//! The joint hardware design space: genomes and the axes they move on.

use crate::rng::SplitMix64;
use lego_eval::FnvHasher;
use lego_sim::{HwConfig, SparseAccel, SpatialMapping};
use std::fmt;
use std::hash::{Hash, Hasher};

pub use lego_eval::ALL_MAPPINGS;

/// A set of fused dataflows, packed as a bitmask over [`ALL_MAPPINGS`].
///
/// Fusing more dataflows lets the mapper rescue more layer shapes (the
/// paper's Table V mechanism) but costs interconnect muxing; the explorer
/// treats the fused set as one genome axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataflowSet(u8);

impl DataflowSet {
    /// Builds a set from explicit mappings.
    ///
    /// # Panics
    ///
    /// Panics if `mappings` is empty.
    pub fn new(mappings: &[SpatialMapping]) -> Self {
        assert!(!mappings.is_empty(), "a design needs at least one dataflow");
        let mut bits = 0u8;
        for m in mappings {
            let idx = ALL_MAPPINGS
                .iter()
                .position(|a| a == m)
                .expect("known mapping");
            bits |= 1 << idx;
        }
        DataflowSet(bits)
    }

    /// The mappings in canonical order.
    pub fn to_vec(self) -> Vec<SpatialMapping> {
        ALL_MAPPINGS
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.0 & (1 << i) != 0)
            .map(|(_, &m)| m)
            .collect()
    }

    /// Number of fused dataflows.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Always false: sets are non-empty by construction.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, m: SpatialMapping) -> bool {
        let idx = ALL_MAPPINGS
            .iter()
            .position(|a| *a == m)
            .expect("known mapping");
        self.0 & (1 << idx) != 0
    }

    /// The raw bitmask over [`ALL_MAPPINGS`] — the set's wire encoding.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds a set from its [`DataflowSet::bits`] encoding. `None` for
    /// an empty set or for bits outside [`ALL_MAPPINGS`].
    pub fn from_bits(bits: u8) -> Option<Self> {
        let valid = (1u8 << ALL_MAPPINGS.len()) - 1;
        if bits == 0 || bits & !valid != 0 {
            return None;
        }
        Some(DataflowSet(bits))
    }
}

impl fmt::Display for DataflowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.to_vec().iter().map(|m| m.name()).collect();
        write!(f, "{}", names.join("+"))
    }
}

/// One candidate hardware configuration — the unit the search mutates,
/// crosses over, caches, and evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Genome {
    /// FU array rows.
    pub rows: i64,
    /// FU array columns.
    pub cols: i64,
    /// L2 cluster grid (1×1 = single array). Multi-cluster designs pay
    /// modeled wormhole-mesh latency and router area through the cost
    /// stack, so this axis is a real latency/energy/area trade-off.
    pub clusters: (u32, u32),
    /// On-chip buffer capacity in KB.
    pub buffer_kb: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: u32,
    /// Fused spatial dataflows.
    pub dataflows: DataflowSet,
    /// Optional L1 tile-edge cap (`None` = buffer-limited automatic tiling).
    pub tile_cap: Option<i64>,
    /// Sparse acceleration feature on the PE datapath. Gating/skipping
    /// frontends cost area on every FU but pay back on sparse layers, so
    /// this axis is an honest area-vs-EDP trade-off (and a pure area loss
    /// on dense models — the search must discover that, not assume it).
    pub sparse: SparseAccel,
}

impl Genome {
    /// The genome whose [`HwConfig`] is exactly the paper's hand-picked
    /// `lego_256` baseline — the anchor the explorer must beat.
    pub fn lego_256_baseline() -> Self {
        Genome {
            rows: 16,
            cols: 16,
            clusters: (1, 1),
            buffer_kb: 256,
            dram_gbps: 16,
            dataflows: DataflowSet::new(&[
                SpatialMapping::GemmMN,
                SpatialMapping::ConvIcOc,
                SpatialMapping::ConvOhOw,
            ]),
            tile_cap: None,
            sparse: SparseAccel::None,
        }
    }

    /// Number of L2 clusters.
    pub fn num_clusters(&self) -> i64 {
        i64::from(self.clusters.0) * i64::from(self.clusters.1)
    }

    /// Total functional units across all clusters.
    pub fn num_fus(&self) -> i64 {
        self.rows * self.cols * self.num_clusters()
    }

    /// Materializes the simulator's hardware configuration.
    ///
    /// PPU count and the static/dynamic power anchors scale from the
    /// `lego_256` reference point (45 mW static / 240 mW dynamic at 256 FUs
    /// and 256 KB), so the baseline genome reproduces
    /// [`HwConfig::lego_256`] exactly and every other genome moves
    /// consistently with its resources.
    pub fn to_hw_config(&self) -> HwConfig {
        let fus = self.num_fus() as f64;
        let fu_scale = fus / 256.0;
        // `buffer_kb` is per cluster; the power anchor tracks total SRAM.
        let buf_scale = (self.buffer_kb * self.num_clusters() as u64) as f64 / 256.0;
        HwConfig {
            array: (self.rows, self.cols),
            clusters: self.clusters,
            buffer_kb: self.buffer_kb,
            dram_gbps: f64::from(self.dram_gbps),
            num_ppus: (self.num_fus() / 16).max(1),
            dataflows: self.dataflows.to_vec(),
            static_mw: 45.0 * (0.6 * fu_scale + 0.4 * buf_scale),
            dynamic_mw: 240.0 * fu_scale,
        }
    }

    /// Stable 64-bit fingerprint (FNV-1a over the fields), used as the
    /// hardware half of [`EvalCache`](crate::EvalCache) keys and as the
    /// deterministic tie-break in scalar rankings.
    ///
    /// Dense-datapath genomes hash exactly the fields they had before the
    /// sparse axis existed, so their fingerprints — and every tie-break
    /// and table that depends on them — are stable across the sparse
    /// extension. A non-`None` sparse feature extends the hashed tuple.
    pub fn key(&self) -> u64 {
        let mut h = FnvHasher::new();
        (
            self.rows,
            self.cols,
            self.clusters,
            self.buffer_kb,
            self.dram_gbps,
            self.dataflows,
            self.tile_cap,
        )
            .hash(&mut h);
        if self.sparse != SparseAccel::None {
            self.sparse.hash(&mut h);
        }
        h.finish()
    }
}

impl fmt::Display for Genome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}/{}KB/{}GBps/{}",
            self.rows, self.cols, self.buffer_kb, self.dram_gbps, self.dataflows
        )?;
        if self.clusters != (1, 1) {
            write!(f, "/c{}x{}", self.clusters.0, self.clusters.1)?;
        }
        if let Some(t) = self.tile_cap {
            write!(f, "/t{t}")?;
        }
        if self.sparse != SparseAccel::None {
            write!(f, "/{}", self.sparse.name())?;
        }
        Ok(())
    }
}

/// The axes a search may explore: the candidate values per genome field.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Candidate FU-array row counts.
    pub rows: Vec<i64>,
    /// Candidate FU-array column counts.
    pub cols: Vec<i64>,
    /// Candidate L2 cluster grids.
    pub clusters: Vec<(u32, u32)>,
    /// Candidate buffer capacities (KB).
    pub buffer_kb: Vec<u64>,
    /// Candidate DRAM bandwidths (GB/s).
    pub dram_gbps: Vec<u32>,
    /// Candidate fused-dataflow sets.
    pub dataflow_sets: Vec<DataflowSet>,
    /// Candidate tile-edge caps.
    pub tile_caps: Vec<Option<i64>>,
    /// Candidate sparse acceleration features. Single-choice axes consume
    /// no randomness during sampling/mutation/crossover, so dense spaces
    /// (`[SparseAccel::None]`) replay exactly the pre-sparsity RNG streams.
    pub sparse_accels: Vec<SparseAccel>,
}

impl DesignSpace {
    /// The default space bracketing the paper's design points: arrays from
    /// 8×8 to 32×32, single array up to a 2×2 L2 cluster mesh, buffers
    /// 128–512 KB per cluster, 8–32 GB/s, three dataflow families,
    /// automatic or capped tiling — 1458 configurations.
    pub fn paper() -> Self {
        use SpatialMapping::*;
        DesignSpace {
            rows: vec![8, 16, 32],
            cols: vec![8, 16, 32],
            clusters: vec![(1, 1), (2, 1), (2, 2)],
            buffer_kb: vec![128, 256, 512],
            dram_gbps: vec![8, 16, 32],
            dataflow_sets: vec![
                DataflowSet::new(&[GemmMN, ConvIcOc]),
                DataflowSet::new(&[GemmMN, ConvIcOc, ConvOhOw]),
                DataflowSet::new(&[GemmMN, GemmKN, ConvIcOc, ConvOhOw, ConvKhOh]),
            ],
            tile_caps: vec![None, Some(64)],
            sparse_accels: vec![SparseAccel::None],
        }
    }

    /// The paper space crossed with the sparse-datapath axis (dense,
    /// gating, skipping) — 4374 configurations. The right space for
    /// pruned/masked models, where the frontend area can pay for itself.
    pub fn sparse() -> Self {
        DesignSpace {
            sparse_accels: SparseAccel::ALL.to_vec(),
            ..Self::paper()
        }
    }

    /// A 32-point space for fast tests.
    pub fn tiny() -> Self {
        use SpatialMapping::*;
        DesignSpace {
            rows: vec![8, 16],
            cols: vec![16],
            clusters: vec![(1, 1), (2, 2)],
            buffer_kb: vec![128, 256],
            dram_gbps: vec![16],
            dataflow_sets: vec![
                DataflowSet::new(&[GemmMN, ConvIcOc]),
                DataflowSet::new(&[GemmMN, ConvIcOc, ConvOhOw]),
            ],
            tile_caps: vec![None, Some(32)],
            sparse_accels: vec![SparseAccel::None],
        }
    }

    /// Number of distinct genomes.
    pub fn size(&self) -> usize {
        self.rows.len()
            * self.cols.len()
            * self.clusters.len()
            * self.buffer_kb.len()
            * self.dram_gbps.len()
            * self.dataflow_sets.len()
            * self.tile_caps.len()
            * self.sparse_accels.len().max(1)
    }

    /// The sparse axis, defaulting to a dense-only datapath when the
    /// choice list was left empty.
    fn sparse_axis(&self) -> &[SparseAccel] {
        if self.sparse_accels.is_empty() {
            &[SparseAccel::None]
        } else {
            &self.sparse_accels
        }
    }

    /// Every genome in the space, in a fixed lexicographic order.
    pub fn enumerate(&self) -> Vec<Genome> {
        let mut out = Vec::with_capacity(self.size());
        for &rows in &self.rows {
            for &cols in &self.cols {
                for &clusters in &self.clusters {
                    for &buffer_kb in &self.buffer_kb {
                        for &dram_gbps in &self.dram_gbps {
                            for &dataflows in &self.dataflow_sets {
                                for &tile_cap in &self.tile_caps {
                                    for &sparse in self.sparse_axis() {
                                        out.push(Genome {
                                            rows,
                                            cols,
                                            clusters,
                                            buffer_kb,
                                            dram_gbps,
                                            dataflows,
                                            tile_cap,
                                            sparse,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Uniform random genome.
    ///
    /// A single-choice sparse axis draws no randomness, so explorations of
    /// dense spaces replay the exact RNG streams (and hence results) they
    /// produced before the sparse axis existed.
    pub fn sample(&self, rng: &mut SplitMix64) -> Genome {
        Genome {
            rows: *rng.pick(&self.rows),
            cols: *rng.pick(&self.cols),
            clusters: *rng.pick(&self.clusters),
            buffer_kb: *rng.pick(&self.buffer_kb),
            dram_gbps: *rng.pick(&self.dram_gbps),
            dataflows: *rng.pick(&self.dataflow_sets),
            tile_cap: *rng.pick(&self.tile_caps),
            sparse: {
                let axis = self.sparse_axis();
                if axis.len() > 1 {
                    *rng.pick(axis)
                } else {
                    axis[0]
                }
            },
        }
    }

    /// Mutates one axis of `g` to a neighboring choice (or a random one for
    /// the unordered axes), staying inside the space. The sparse axis only
    /// participates when it has more than one choice (see
    /// [`DesignSpace::sample`] on RNG-stream stability).
    pub fn mutate(&self, g: &Genome, rng: &mut SplitMix64) -> Genome {
        let mut out = *g;
        let axes = if self.sparse_axis().len() > 1 { 8 } else { 7 };
        match rng.below(axes) {
            0 => out.rows = step(&self.rows, g.rows, rng),
            1 => out.cols = step(&self.cols, g.cols, rng),
            2 => out.clusters = step(&self.clusters, g.clusters, rng),
            3 => out.buffer_kb = step(&self.buffer_kb, g.buffer_kb, rng),
            4 => out.dram_gbps = step(&self.dram_gbps, g.dram_gbps, rng),
            5 => out.dataflows = *rng.pick(&self.dataflow_sets),
            6 => out.tile_cap = *rng.pick(&self.tile_caps),
            _ => out.sparse = *rng.pick(self.sparse_axis()),
        }
        out
    }

    /// Deterministic 1-of-`count` slice of the space for distributed
    /// search: shard `index` owns the genomes at enumeration positions
    /// `index, index + count, index + 2·count, …`, so the `count` shards
    /// cover [`DesignSpace::enumerate`] disjointly and reproducibly. The
    /// shard also splits seeded RNG streams ([`SpaceShard::split_seed`])
    /// so random/evolutionary strategies on different shards draw
    /// different sample sequences from the same base seed.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `index >= count`.
    pub fn shard(&self, index: u32, count: u32) -> SpaceShard<'_> {
        assert!(count > 0, "a space splits into at least one shard");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        SpaceShard {
            space: self,
            index,
            count,
        }
    }

    /// The trivial shard covering the whole space (what
    /// [`explore`](crate::explore) searches). Grid enumeration, sampling, and seed
    /// splitting through it are bit-identical to the unsharded space.
    pub fn full(&self) -> SpaceShard<'_> {
        self.shard(0, 1)
    }

    /// Uniform crossover: each axis from one parent or the other.
    pub fn crossover(&self, a: &Genome, b: &Genome, rng: &mut SplitMix64) -> Genome {
        Genome {
            rows: if rng.chance(0.5) { a.rows } else { b.rows },
            cols: if rng.chance(0.5) { a.cols } else { b.cols },
            clusters: if rng.chance(0.5) {
                a.clusters
            } else {
                b.clusters
            },
            buffer_kb: if rng.chance(0.5) {
                a.buffer_kb
            } else {
                b.buffer_kb
            },
            dram_gbps: if rng.chance(0.5) {
                a.dram_gbps
            } else {
                b.dram_gbps
            },
            dataflows: if rng.chance(0.5) {
                a.dataflows
            } else {
                b.dataflows
            },
            tile_cap: if rng.chance(0.5) {
                a.tile_cap
            } else {
                b.tile_cap
            },
            sparse: if self.sparse_axis().len() > 1 {
                if rng.chance(0.5) {
                    a.sparse
                } else {
                    b.sparse
                }
            } else {
                // Single-choice axis: both parents carry the same feature;
                // copy it without consuming randomness.
                a.sparse
            },
        }
    }
}

/// A deterministic slice of a [`DesignSpace`] — the unit a distributed
/// search hands to one worker process.
///
/// Shard `index` of `count` owns the strided subset of the canonical
/// enumeration (positions ≡ `index` mod `count`), so grid search over all
/// shards covers the space exactly once. Sampling, mutation, and crossover
/// delegate to the full space (stochastic strategies are disjoint by
/// *seed*, not by rejection — see [`SpaceShard::split_seed`]), which keeps
/// evolutionary walks free to roam the whole space while the exhaustive
/// partition stays airtight.
#[derive(Debug, Clone, Copy)]
pub struct SpaceShard<'a> {
    space: &'a DesignSpace,
    index: u32,
    count: u32,
}

impl<'a> SpaceShard<'a> {
    /// The underlying full design space.
    pub fn space(&self) -> &'a DesignSpace {
        self.space
    }

    /// This shard's index in `0..count`.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total number of shards in the partition.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether this shard is the whole space.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Number of genomes this shard owns.
    pub fn size(&self) -> usize {
        let total = self.space.size();
        let (i, n) = (self.index as usize, self.count as usize);
        if i >= total {
            0
        } else {
            (total - i).div_ceil(n)
        }
    }

    /// This shard's genomes: every `count`-th genome of the canonical
    /// enumeration starting at `index`. The union over all shards is
    /// exactly [`DesignSpace::enumerate`], with no duplicates.
    pub fn enumerate(&self) -> Vec<Genome> {
        self.space
            .enumerate()
            .into_iter()
            .skip(self.index as usize)
            .step_by(self.count as usize)
            .collect()
    }

    /// Splits a strategy's base seed for this shard. The full shard is the
    /// identity — single-process runs replay their historical RNG streams
    /// bit-for-bit — and every other `(index, count)` derives a distinct,
    /// reproducible stream through one splitmix64 step.
    pub fn split_seed(&self, base: u64) -> u64 {
        if self.count <= 1 {
            return base;
        }
        let tag = (u64::from(self.index) << 32) | u64::from(self.count);
        SplitMix64::new(base ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
    }

    /// Uniform random genome from the *full* space (see the type docs).
    pub fn sample(&self, rng: &mut SplitMix64) -> Genome {
        self.space.sample(rng)
    }

    /// Mutation over the full space's axes.
    pub fn mutate(&self, g: &Genome, rng: &mut SplitMix64) -> Genome {
        self.space.mutate(g, rng)
    }

    /// Uniform crossover over the full space's axes.
    pub fn crossover(&self, a: &Genome, b: &Genome, rng: &mut SplitMix64) -> Genome {
        self.space.crossover(a, b, rng)
    }
}

/// Moves `current` one position up or down its axis (random direction,
/// clamped); falls back to a random choice if `current` left the axis.
fn step<T: Copy + PartialEq>(axis: &[T], current: T, rng: &mut SplitMix64) -> T {
    match axis.iter().position(|v| *v == current) {
        Some(i) => {
            let j = if rng.chance(0.5) {
                i.saturating_sub(1)
            } else {
                (i + 1).min(axis.len() - 1)
            };
            axis[j]
        }
        None => *rng.pick(axis),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_genome_is_exactly_lego_256() {
        assert_eq!(
            Genome::lego_256_baseline().to_hw_config(),
            HwConfig::lego_256()
        );
    }

    #[test]
    fn enumerate_matches_size_and_is_unique() {
        let s = DesignSpace::paper();
        let all = s.enumerate();
        assert_eq!(all.len(), s.size());
        let keys: std::collections::HashSet<u64> = all.iter().map(Genome::key).collect();
        assert_eq!(keys.len(), all.len(), "genome keys must be distinct");
    }

    #[test]
    fn sample_mutate_crossover_stay_in_space() {
        let s = DesignSpace::paper();
        let inside = |g: &Genome| {
            s.rows.contains(&g.rows)
                && s.cols.contains(&g.cols)
                && s.clusters.contains(&g.clusters)
                && s.buffer_kb.contains(&g.buffer_kb)
                && s.dram_gbps.contains(&g.dram_gbps)
                && s.dataflow_sets.contains(&g.dataflows)
                && s.tile_caps.contains(&g.tile_cap)
        };
        let mut rng = SplitMix64::new(1);
        for _ in 0..200 {
            let a = s.sample(&mut rng);
            let b = s.sample(&mut rng);
            assert!(inside(&a) && inside(&b));
            assert!(inside(&s.mutate(&a, &mut rng)));
            assert!(inside(&s.crossover(&a, &b, &mut rng)));
        }
    }

    #[test]
    fn cluster_genomes_materialize_the_l2_mesh() {
        let mut g = Genome::lego_256_baseline();
        g.clusters = (2, 2);
        assert_eq!(g.num_fus(), 1024);
        let hw = g.to_hw_config();
        assert_eq!(hw.clusters, (2, 2));
        assert_eq!(hw.num_fus(), 1024);
        assert_eq!(hw.l2_mesh().routers(), 4);
        // Power anchors scale with the full cluster count.
        let base = Genome::lego_256_baseline().to_hw_config();
        assert!(hw.dynamic_mw > 3.9 * base.dynamic_mw);
        assert!(g.to_string().ends_with("/c2x2"), "{g}");
        assert_eq!(hw.validate(), Ok(()));
    }

    #[test]
    fn dataflow_set_roundtrip_and_display() {
        let set = DataflowSet::new(&[SpatialMapping::ConvOhOw, SpatialMapping::GemmMN]);
        assert_eq!(
            set.to_vec(),
            vec![SpatialMapping::GemmMN, SpatialMapping::ConvOhOw]
        );
        assert_eq!(set.to_string(), "MN+OHOW");
        assert_eq!(set.len(), 2);
        assert!(set.contains(SpatialMapping::GemmMN));
        assert!(!set.contains(SpatialMapping::GemmKN));
    }

    #[test]
    fn sparse_space_crosses_the_accel_axis() {
        let dense = DesignSpace::paper();
        let sparse = DesignSpace::sparse();
        assert_eq!(sparse.size(), 3 * dense.size());
        let all = sparse.enumerate();
        assert_eq!(all.len(), sparse.size());
        for accel in SparseAccel::ALL {
            assert!(all.iter().any(|g| g.sparse == accel), "{accel:?} missing");
        }
        // Dense spaces only ever produce dense-datapath genomes.
        assert!(dense
            .enumerate()
            .iter()
            .all(|g| g.sparse == SparseAccel::None));
        // Display tags only non-dense datapaths.
        let mut g = Genome::lego_256_baseline();
        assert!(!g.to_string().contains("skip"));
        g.sparse = SparseAccel::Skipping;
        assert!(g.to_string().ends_with("/skip"), "{g}");
    }

    #[test]
    fn single_choice_sparse_axis_consumes_no_randomness() {
        // The same seed must produce the same genome stream whether the
        // dense space was built before or after the sparse axis existed;
        // equivalently, sampling must not consume RNG draws for a
        // single-choice axis. We check by comparing against a manual
        // redraw that never touches the axis.
        let s = DesignSpace::paper();
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let g = s.sample(&mut a);
            let manual = Genome {
                rows: *b.pick(&s.rows),
                cols: *b.pick(&s.cols),
                clusters: *b.pick(&s.clusters),
                buffer_kb: *b.pick(&s.buffer_kb),
                dram_gbps: *b.pick(&s.dram_gbps),
                dataflows: *b.pick(&s.dataflow_sets),
                tile_cap: *b.pick(&s.tile_caps),
                sparse: SparseAccel::None,
            };
            assert_eq!(g, manual);
        }
        // Mutation on a dense space keeps the historical 7-axis draw and
        // never flips the sparse field; on a sparse space it can.
        let mut rng = SplitMix64::new(9);
        let g = Genome::lego_256_baseline();
        assert!((0..50).all(|_| s.mutate(&g, &mut rng).sparse == SparseAccel::None));
        let sp = DesignSpace::sparse();
        assert!((0..200).any(|_| sp.mutate(&g, &mut rng).sparse != SparseAccel::None));
    }

    #[test]
    fn shards_partition_the_enumeration_disjointly() {
        let s = DesignSpace::tiny();
        for n in [1u32, 2, 3, 4, 7] {
            let mut union: Vec<u64> = Vec::new();
            let mut total = 0usize;
            for i in 0..n {
                let shard = s.shard(i, n);
                let genomes = shard.enumerate();
                assert_eq!(genomes.len(), shard.size(), "shard {i}/{n}");
                total += genomes.len();
                union.extend(genomes.iter().map(Genome::key));
            }
            assert_eq!(total, s.size(), "{n} shards must cover the space");
            union.sort_unstable();
            union.dedup();
            assert_eq!(union.len(), s.size(), "{n} shards must not overlap");
        }
        // More shards than genomes: trailing shards are empty, the
        // partition still covers.
        let n = (s.size() + 3) as u32;
        let covered: usize = (0..n).map(|i| s.shard(i, n).size()).sum();
        assert_eq!(covered, s.size());
        assert_eq!(s.shard(n - 1, n).enumerate().len(), 0);
    }

    #[test]
    fn full_shard_is_the_identity() {
        let s = DesignSpace::tiny();
        let full = s.full();
        assert!(full.is_full());
        assert_eq!(full.enumerate(), s.enumerate());
        assert_eq!(full.size(), s.size());
        // Seed splitting is the identity on the full shard, so historical
        // single-process runs replay bit-for-bit…
        assert_eq!(full.split_seed(0xDE5E), 0xDE5E);
        // …and sharded seeds are distinct per shard but stable per call.
        let a = s.shard(0, 4).split_seed(7);
        let b = s.shard(1, 4).split_seed(7);
        assert_ne!(a, b);
        assert_ne!(a, 7);
        assert_eq!(a, s.shard(0, 4).split_seed(7));
        // A different shard count gives a different stream, too.
        assert_ne!(a, s.shard(0, 2).split_seed(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let s = DesignSpace::tiny();
        let _ = s.shard(3, 3);
    }

    #[test]
    fn dataflow_set_bits_roundtrip() {
        use SpatialMapping::*;
        let set = DataflowSet::new(&[GemmMN, ConvOhOw]);
        assert_eq!(DataflowSet::from_bits(set.bits()), Some(set));
        assert_eq!(DataflowSet::from_bits(0), None, "empty set is invalid");
        assert_eq!(DataflowSet::from_bits(0xE0), None, "unknown bits rejected");
        // Every enumerable set survives the round trip.
        for bits in 1u8..(1 << ALL_MAPPINGS.len()) {
            let s = DataflowSet::from_bits(bits).expect("valid mask");
            assert_eq!(s.bits(), bits);
            assert_eq!(DataflowSet::new(&s.to_vec()), s);
        }
    }

    #[test]
    fn genome_key_is_stable_and_field_sensitive() {
        let g = Genome::lego_256_baseline();
        assert_eq!(g.key(), g.key());
        let mut h = g;
        h.buffer_kb = 512;
        assert_ne!(g.key(), h.key());
        // The sparse feature is part of the fingerprint…
        let mut s = g;
        s.sparse = SparseAccel::Skipping;
        assert_ne!(g.key(), s.key());
        let mut s2 = g;
        s2.sparse = SparseAccel::Gating;
        assert_ne!(s.key(), s2.key());
    }
}
