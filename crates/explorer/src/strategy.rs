//! Pluggable search strategies over the design space.

use crate::eval::{DesignPoint, Evaluator};
use crate::pareto::ParetoFrontier;
use crate::rng::SplitMix64;
#[cfg(test)]
use crate::space::DesignSpace;
use crate::space::{Genome, SpaceShard};

/// What one strategy did with its evaluation budget.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Strategy name.
    pub strategy: String,
    /// Candidates evaluated (cache hits included).
    pub evaluated: usize,
    /// The strategy's own best candidate under the evaluator's
    /// [`Objective`](crate::Objective) (plain EDP by default).
    pub best: Option<DesignPoint>,
}

/// A search procedure spending an evaluation budget on (a shard of) the
/// space.
///
/// Strategies receive the shared [`Evaluator`] (and through it the shared
/// [`EvalCache`](crate::EvalCache) and the active
/// [`Objective`](crate::Objective)), push every candidate they score into
/// the common [`ParetoFrontier`], and report their scalar best. All
/// randomness must come from strategy-owned seeds — split per shard via
/// [`SpaceShard::split_seed`], which is the identity on the full shard —
/// so runs replay exactly, sharded or not.
pub trait SearchStrategy {
    /// Display name (used in reports and tables).
    fn name(&self) -> String;

    /// Offers genomes (typically a previous run's Pareto frontier) to seed
    /// the search. The default implementation ignores them; population
    /// strategies may start from them instead of uniform samples.
    fn warm_start(&mut self, _genomes: &[Genome]) {}

    /// Spends up to `budget` evaluations on `shard` (use
    /// [`DesignSpace::full`](crate::DesignSpace::full) for a
    /// single-process search over the whole space).
    fn run(
        &mut self,
        shard: &SpaceShard<'_>,
        evaluator: &Evaluator<'_>,
        frontier: &mut ParetoFrontier,
        budget: usize,
    ) -> SearchReport;
}

/// Evaluates a batch, folds it into the frontier, and tracks the best
/// score under the evaluator's objective.
///
/// Infeasible candidates (violating the evaluator's hard area/power
/// budgets) are returned for the caller's bookkeeping but never join the
/// frontier or the reported best.
fn score_batch(
    evaluator: &Evaluator<'_>,
    frontier: &mut ParetoFrontier,
    genomes: &[Genome],
    best: &mut Option<DesignPoint>,
) -> Vec<DesignPoint> {
    evaluator.obs().count("explore.evals", genomes.len() as u64);
    let points = evaluator.eval_batch(genomes);
    for p in &points {
        if !p.feasible {
            continue;
        }
        frontier.insert(p.clone());
        let better = best
            .as_ref()
            .is_none_or(|b| evaluator.key(p) < evaluator.key(b));
        if better {
            *best = Some(p.clone());
        }
    }
    points
}

/// Exhaustive sweep of the shard (truncated at the budget), in the
/// space's canonical enumeration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridSearch;

impl SearchStrategy for GridSearch {
    fn name(&self) -> String {
        "grid".into()
    }

    fn run(
        &mut self,
        shard: &SpaceShard<'_>,
        evaluator: &Evaluator<'_>,
        frontier: &mut ParetoFrontier,
        budget: usize,
    ) -> SearchReport {
        let mut genomes = shard.enumerate();
        genomes.truncate(budget);
        let mut best = None;
        score_batch(evaluator, frontier, &genomes, &mut best);
        SearchReport {
            strategy: self.name(),
            evaluated: genomes.len(),
            best,
        }
    }
}

/// Seeded uniform random sampling.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// RNG seed (same seed ⇒ same samples).
    pub seed: u64,
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> String {
        format!("random(seed={})", self.seed)
    }

    fn run(
        &mut self,
        shard: &SpaceShard<'_>,
        evaluator: &Evaluator<'_>,
        frontier: &mut ParetoFrontier,
        budget: usize,
    ) -> SearchReport {
        let mut rng = SplitMix64::new(shard.split_seed(self.seed));
        let genomes: Vec<Genome> = (0..budget).map(|_| shard.sample(&mut rng)).collect();
        let mut best = None;
        score_batch(evaluator, frontier, &genomes, &mut best);
        SearchReport {
            strategy: self.name(),
            evaluated: genomes.len(),
            best,
        }
    }
}

/// (μ+λ) evolutionary strategy over config genomes.
///
/// Keeps the μ best-scoring parents, breeds λ children per generation by
/// uniform crossover of two tournament-selected parents followed by a
/// per-axis mutation, and selects the next parents from parents ∪ children.
/// SparseMap drives accelerator configuration with the same family of
/// evolution strategies; the evaluator's scalarization (plain EDP by
/// default, optionally penalty-constrained) is the fitness here.
///
/// A [`SearchStrategy::warm_start`] population — e.g. a previous run's
/// Pareto frontier — replaces the uniform initial samples, so a follow-up
/// search (new model, tightened budget) starts from proven designs
/// instead of from scratch.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    /// RNG seed.
    pub seed: u64,
    /// Parent population size μ.
    pub mu: usize,
    /// Children per generation λ.
    pub lambda: usize,
    /// Probability that a child is additionally mutated.
    pub mutation_rate: f64,
    /// Warm-start genomes evaluated as the initial population (topped up
    /// with uniform samples below μ). Usually set through
    /// [`SearchStrategy::warm_start`].
    pub warm: Vec<Genome>,
}

impl Default for EvolutionarySearch {
    fn default() -> Self {
        EvolutionarySearch {
            seed: 1,
            mu: 8,
            lambda: 16,
            mutation_rate: 0.6,
            warm: Vec::new(),
        }
    }
}

impl EvolutionarySearch {
    fn fitness(evaluator: &Evaluator<'_>, p: &DesignPoint) -> ([f64; 3], u64) {
        // Deterministic total order: the objective's ranking key (score
        // plus tie-breakers under a lexicographic objective), then the
        // genome fingerprint. Infeasible designs sort behind every
        // feasible one (but stay in the population, so search can cross
        // the infeasible region).
        let key = if p.feasible {
            evaluator.key(p)
        } else {
            [f64::INFINITY; 3]
        };
        (key, p.genome.key())
    }
}

impl SearchStrategy for EvolutionarySearch {
    fn name(&self) -> String {
        let warm = if self.warm.is_empty() { "" } else { ",warm" };
        format!(
            "evolutionary(μ={},λ={},seed={}{warm})",
            self.mu, self.lambda, self.seed
        )
    }

    fn warm_start(&mut self, genomes: &[Genome]) {
        self.warm = genomes.to_vec();
    }

    fn run(
        &mut self,
        shard: &SpaceShard<'_>,
        evaluator: &Evaluator<'_>,
        frontier: &mut ParetoFrontier,
        budget: usize,
    ) -> SearchReport {
        let mu = self.mu.max(2);
        let lambda = self.lambda.max(1);
        let mut rng = SplitMix64::new(shard.split_seed(self.seed));
        let mut best = None;

        // Initial population: warm-start genomes first (a previous
        // frontier, re-evaluated here — usually cache hits), topped up to
        // μ with uniform samples; a warm set larger than μ is truncated so
        // the budget goes to evolution, not to re-scoring known points.
        // An empty warm set draws exactly the samples it always did, so
        // cold runs replay bit-for-bit.
        let init_size = mu.min(budget.max(1));
        let mut init: Vec<Genome> = self.warm.iter().copied().take(init_size).collect();
        while init.len() < init_size {
            init.push(shard.sample(&mut rng));
        }
        let mut evaluated = init.len();
        let mut population = {
            let _span = evaluator.obs().span("explore/generation");
            score_batch(evaluator, frontier, &init, &mut best)
        };

        while evaluated < budget {
            // One span per generation: with a wall-clock recorder, the
            // span's total time over the `explore.evals` counter is the
            // search's evaluations-per-second figure.
            let _gen_span = evaluator.obs().span("explore/generation");
            evaluator.obs().count("explore.generations", 1);
            let brood = lambda.min(budget - evaluated);
            evaluator
                .obs()
                .record("explore.generation_size", brood as f64);
            let children: Vec<Genome> = (0..brood)
                .map(|_| {
                    // Binary tournament per parent slot.
                    let pick = |rng: &mut SplitMix64, pop: &[DesignPoint]| -> Genome {
                        let a = &pop[rng.below(pop.len())];
                        let b = &pop[rng.below(pop.len())];
                        if Self::fitness(evaluator, a) <= Self::fitness(evaluator, b) {
                            a.genome
                        } else {
                            b.genome
                        }
                    };
                    let pa = pick(&mut rng, &population);
                    let pb = pick(&mut rng, &population);
                    let mut child = shard.crossover(&pa, &pb, &mut rng);
                    if rng.chance(self.mutation_rate) {
                        child = shard.mutate(&child, &mut rng);
                    }
                    child
                })
                .collect();
            evaluated += children.len();
            let scored = score_batch(evaluator, frontier, &children, &mut best);
            // (μ+λ) selection: keep the best μ of parents ∪ children.
            population.extend(scored);
            population.sort_by(|a, b| {
                Self::fitness(evaluator, a)
                    .partial_cmp(&Self::fitness(evaluator, b))
                    .expect("finite fitness")
            });
            population.truncate(mu);
        }

        SearchReport {
            strategy: self.name(),
            evaluated,
            best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::Objective;
    use lego_model::TechModel;
    use lego_workloads::zoo;

    fn run(strategy: &mut dyn SearchStrategy, budget: usize) -> (SearchReport, ParetoFrontier) {
        let model = zoo::lenet();
        let ev = Evaluator::new(&model, TechModel::default());
        let mut frontier = ParetoFrontier::new();
        let space = DesignSpace::tiny();
        let report = strategy.run(&space.full(), &ev, &mut frontier, budget);
        (report, frontier)
    }

    #[test]
    fn grid_covers_the_whole_tiny_space() {
        let (report, frontier) = run(&mut GridSearch, 1 << 20);
        assert_eq!(report.evaluated, DesignSpace::tiny().size());
        assert!(report.best.is_some());
        assert!(frontier.is_mutually_non_dominated());
        assert!(!frontier.is_empty());
    }

    #[test]
    fn random_is_reproducible_per_seed() {
        let (a, _) = run(&mut RandomSearch { seed: 9 }, 20);
        let (b, _) = run(&mut RandomSearch { seed: 9 }, 20);
        let (c, _) = run(&mut RandomSearch { seed: 10 }, 20);
        let edp = |r: &SearchReport| r.best.as_ref().unwrap().objectives.edp();
        assert_eq!(
            a.best.as_ref().unwrap().genome,
            b.best.as_ref().unwrap().genome
        );
        assert!((edp(&a) - edp(&b)).abs() < 1e-9);
        // Different seed may find the same best, but must at least replay
        // its own run deterministically.
        let (c2, _) = run(&mut RandomSearch { seed: 10 }, 20);
        assert_eq!(
            c.best.as_ref().unwrap().genome,
            c2.best.as_ref().unwrap().genome
        );
    }

    #[test]
    fn evolutionary_respects_budget_and_replays() {
        let mut es = EvolutionarySearch {
            seed: 4,
            mu: 4,
            lambda: 6,
            mutation_rate: 0.7,
            ..Default::default()
        };
        let (a, _) = run(&mut es, 30);
        assert_eq!(a.evaluated, 30);
        let mut es2 = EvolutionarySearch {
            seed: 4,
            mu: 4,
            lambda: 6,
            mutation_rate: 0.7,
            ..Default::default()
        };
        let (b, _) = run(&mut es2, 30);
        assert_eq!(
            a.best.as_ref().unwrap().genome,
            b.best.as_ref().unwrap().genome
        );
    }

    #[test]
    fn sharded_grid_unions_to_the_full_grid() {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let ev = Evaluator::new(&model, TechModel::default());
        let mut full = ParetoFrontier::new();
        let full_report = GridSearch.run(&space.full(), &ev, &mut full, usize::MAX);
        let mut merged = ParetoFrontier::new();
        let mut evaluated = 0;
        for i in 0..3 {
            let shard = space.shard(i, 3);
            evaluated += GridSearch
                .run(&shard, &ev, &mut merged, usize::MAX)
                .evaluated;
        }
        assert_eq!(evaluated, full_report.evaluated);
        assert!(merged.dominance_equal(&full));
    }

    #[test]
    fn sharded_stochastic_strategies_draw_distinct_streams() {
        // Same base seed, different shards: the random strategy must not
        // replay the same sample sequence (that would duplicate work
        // across workers), yet each shard must replay itself exactly.
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let ev = Evaluator::new(&model, TechModel::default());
        let sample_trace = |i: u32, n: u32| -> Vec<Genome> {
            let shard = space.shard(i, n);
            let mut rng = SplitMix64::new(shard.split_seed(17));
            (0..8).map(|_| shard.sample(&mut rng)).collect()
        };
        assert_ne!(sample_trace(0, 4), sample_trace(1, 4));
        assert_eq!(sample_trace(2, 4), sample_trace(2, 4));
        // And the full shard replays the historical unsharded stream.
        let mut rng = SplitMix64::new(17);
        let unsharded: Vec<Genome> = (0..8).map(|_| space.sample(&mut rng)).collect();
        assert_eq!(sample_trace(0, 1), unsharded);
        // The ES is reproducible per shard, too.
        let es_best = |i: u32| {
            let shard = space.shard(i, 2);
            let mut es = EvolutionarySearch {
                seed: 5,
                mu: 4,
                lambda: 4,
                ..Default::default()
            };
            let mut f = ParetoFrontier::new();
            es.run(&shard, &ev, &mut f, 16).best.unwrap().genome
        };
        assert_eq!(es_best(0), es_best(0));
    }

    #[test]
    fn evolutionary_never_loses_to_its_own_population_start() {
        // ES best can only improve over generations (elitist μ+λ).
        let mut es = EvolutionarySearch::default();
        let (report, frontier) = run(&mut es, 40);
        let best = report.best.unwrap();
        assert!(frontier
            .points()
            .iter()
            .all(|p| best.objectives.edp() <= p.objectives.edp() + 1e-9));
    }

    #[test]
    fn lexicographic_objective_minimizes_latency_first() {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let ev =
            Evaluator::new(&model, TechModel::default()).with_objective(Objective::Lexicographic);
        let mut frontier = ParetoFrontier::new();
        let report = GridSearch.run(&space.full(), &ev, &mut frontier, 1 << 20);
        let best = report.best.expect("grid finds a best");
        // The winner has the minimum latency over the whole frontier …
        for p in frontier.points() {
            assert!(
                best.objectives.latency_cycles <= p.objectives.latency_cycles,
                "lexicographic best must lead on latency"
            );
            // … and among latency ties, the minimum energy.
            if p.objectives.latency_cycles == best.objectives.latency_cycles {
                assert!(best.objectives.energy_pj <= p.objectives.energy_pj);
            }
        }
        // The scalar score reported for it is its latency.
        assert_eq!(ev.score(&best), best.objectives.latency_cycles);
        // Replays identically.
        let mut f2 = ParetoFrontier::new();
        let again = GridSearch.run(&space.full(), &ev, &mut f2, 1 << 20);
        assert_eq!(again.best.unwrap().genome, best.genome);
    }
}
