//! Multi-objective bookkeeping: dominance, the Pareto frontier, hard
//! feasibility constraints, and the scalarizations ([`Objective`]) used
//! for ranking — including penalty-based *soft* budgets that compose with
//! the hard [`Constraints`] filter.
//!
//! The objective vector and scalarization types ([`Objectives`],
//! [`BaseObjective`], [`Objective`]) moved down into `lego-eval` with the
//! evaluation layer — a request names the objective it is scored under —
//! and are re-exported here so explorer-facing code keeps its paths.

use crate::eval::DesignPoint;
use crate::space::Genome;

pub use lego_eval::{BaseObjective, Objective, Objectives};

/// Hard feasibility budgets applied to every candidate before it may join
/// the frontier or be reported as a best design.
///
/// Unlike the frontier's objectives (which trade off), a violated budget
/// disqualifies outright — SparseMap-style constrained search. Infeasible
/// candidates are still evaluated and cached (the evolutionary strategy
/// keeps them in its population with infinite fitness so search can walk
/// through them), they just cannot win.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Constraints {
    /// Maximum accelerator area in µm² (`None` = unconstrained).
    pub max_area_um2: Option<f64>,
    /// Maximum peak power in mW (`None` = unconstrained).
    pub max_power_mw: Option<f64>,
}

impl Constraints {
    /// No budgets: every design is feasible.
    pub fn none() -> Self {
        Constraints::default()
    }

    /// An area budget in mm² (the natural unit for chip budgets).
    #[must_use]
    pub fn with_max_area_mm2(mut self, mm2: f64) -> Self {
        self.max_area_um2 = Some(mm2 * 1e6);
        self
    }

    /// A peak-power budget in mW.
    #[must_use]
    pub fn with_max_power_mw(mut self, mw: f64) -> Self {
        self.max_power_mw = Some(mw);
        self
    }

    /// Whether a design with this area and peak power fits every budget.
    pub fn admits(&self, area_um2: f64, power_mw: f64) -> bool {
        self.max_area_um2.is_none_or(|cap| area_um2 <= cap)
            && self.max_power_mw.is_none_or(|cap| power_mw <= cap)
    }

    /// Whether any budget is set.
    pub fn is_constrained(&self) -> bool {
        self.max_area_um2.is_some() || self.max_power_mw.is_some()
    }
}

/// The set of mutually non-dominated design points found so far.
///
/// Insertion maintains the invariant that no member dominates another:
/// a dominated candidate is rejected, and an accepted candidate evicts
/// every member it dominates.
#[derive(Debug, Clone, Default)]
pub struct ParetoFrontier {
    points: Vec<DesignPoint>,
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a candidate. Returns `true` if it joined the frontier
    /// (evicting any members it dominates), `false` if an existing member
    /// dominates it or an identical genome is already present.
    pub fn insert(&mut self, candidate: DesignPoint) -> bool {
        if self
            .points
            .iter()
            .any(|p| p.genome == candidate.genome || p.objectives.dominates(&candidate.objectives))
        {
            return false;
        }
        self.points
            .retain(|p| !candidate.objectives.dominates(&p.objectives));
        self.points.push(candidate);
        true
    }

    /// The frontier members, in insertion order.
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Member minimizing an arbitrary scalarization.
    pub fn best_by<F: Fn(&Objectives) -> f64>(&self, score: F) -> Option<&DesignPoint> {
        self.points.iter().min_by(|a, b| {
            score(&a.objectives)
                .partial_cmp(&score(&b.objectives))
                .expect("finite scores")
                .then_with(|| a.genome.key().cmp(&b.genome.key()))
        })
    }

    /// Member minimizing energy-delay product.
    pub fn best_by_edp(&self) -> Option<&DesignPoint> {
        self.best_by(Objectives::edp)
    }

    /// Member minimizing energy-delay-area product.
    pub fn best_by_edap(&self) -> Option<&DesignPoint> {
        self.best_by(Objectives::edap)
    }

    /// Member minimizing an [`Objective`] (which, unlike
    /// [`ParetoFrontier::best_by`], may price the point's peak power).
    pub fn best_by_objective(&self, objective: &Objective) -> Option<&DesignPoint> {
        self.points.iter().min_by(|a, b| {
            objective
                .score(&a.objectives, a.peak_power_mw)
                .partial_cmp(&objective.score(&b.objectives, b.peak_power_mw))
                .expect("finite scores")
                .then_with(|| a.genome.key().cmp(&b.genome.key()))
        })
    }

    /// The members' genomes in insertion order — the natural warm-start
    /// seed for a follow-up exploration
    /// ([`ExploreOptions::warm_start`](crate::ExploreOptions)).
    pub fn genomes(&self) -> Vec<Genome> {
        self.points.iter().map(|p| p.genome).collect()
    }

    /// Folds another frontier into this one, point by point. This is how
    /// shard results combine: because [`ParetoFrontier::insert`] keeps
    /// exactly the non-dominated subset of everything ever offered —
    /// independent of offer order — merging the per-shard frontiers of a
    /// disjoint grid partition reproduces the single-process frontier
    /// ([`ParetoFrontier::dominance_equal`] pins this). Merge is
    /// commutative, associative, and idempotent up to dominance equality.
    ///
    /// Returns the number of points that joined.
    pub fn merge(&mut self, other: &ParetoFrontier) -> usize {
        other
            .points
            .iter()
            .filter(|p| self.insert((*p).clone()))
            .count()
    }

    /// Whether two frontiers describe the same trade-off surface: every
    /// point of each is matched by a point of the other with identical
    /// objectives. Genome-level ties (distinct designs with exactly equal
    /// objectives) may differ between runs that evaluated different
    /// subsets, so this — not `Vec` equality — is the equivalence the
    /// shard-merge invariant promises.
    pub fn dominance_equal(&self, other: &ParetoFrontier) -> bool {
        let covered = |a: &[DesignPoint], b: &[DesignPoint]| {
            a.iter()
                .all(|p| b.iter().any(|q| q.objectives == p.objectives))
        };
        covered(&self.points, &other.points) && covered(&other.points, &self.points)
    }

    /// The members' genome fingerprints, sorted — a canonical identity for
    /// set-level comparisons in tests and merge reports.
    pub fn genome_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.points.iter().map(|p| p.genome.key()).collect();
        keys.sort_unstable();
        keys
    }

    /// Checks the defining invariant: no member dominates another.
    pub fn is_mutually_non_dominated(&self) -> bool {
        self.points.iter().enumerate().all(|(i, a)| {
            self.points
                .iter()
                .enumerate()
                .all(|(j, b)| i == j || !a.objectives.dominates(&b.objectives))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::space::Genome;
    use lego_sim::ModelPerf;

    fn point(lat: f64, en: f64, area: f64) -> DesignPoint {
        // Distinct genomes so duplicate-genome rejection doesn't interfere.
        let mut genome = Genome::lego_256_baseline();
        genome.rows = (lat as i64) * 1000 + (en as i64) * 10 + area as i64 + 1;
        DesignPoint {
            genome,
            feasible: true,
            peak_power_mw: 0.0,
            objectives: Objectives {
                latency_cycles: lat,
                energy_pj: en,
                area_um2: area,
            },
            perf: ModelPerf {
                cycles: lat as i64,
                ops: 0,
                gops: 0.0,
                watts: 0.0,
                gops_per_watt: 0.0,
                utilization: 0.0,
                ppu_fraction: 0.0,
                instr_gbps: 0.0,
            },
        }
    }

    #[test]
    fn insertion_rejects_dominated_and_evicts_dominated() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(point(2.0, 2.0, 2.0)));
        // Dominated candidate rejected.
        assert!(!f.insert(point(3.0, 3.0, 3.0)));
        assert_eq!(f.len(), 1);
        // Incomparable candidate accepted.
        assert!(f.insert(point(1.0, 5.0, 1.0)));
        assert_eq!(f.len(), 2);
        // A dominator evicts everything it beats.
        assert!(f.insert(point(1.0, 1.0, 1.0)));
        assert_eq!(f.len(), 1);
        assert!((f.points()[0].objectives.latency_cycles - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_dominated_survivors_under_random_insertion() {
        let mut rng = SplitMix64::new(77);
        let mut f = ParetoFrontier::new();
        for _ in 0..500 {
            let p = point(
                (1 + rng.below(10)) as f64,
                (1 + rng.below(10)) as f64,
                (1 + rng.below(10)) as f64,
            );
            f.insert(p);
            assert!(f.is_mutually_non_dominated());
        }
        assert!(!f.is_empty());
    }

    #[test]
    fn constraints_admit_and_reject() {
        let none = Constraints::none();
        assert!(!none.is_constrained());
        assert!(none.admits(f64::MAX, f64::MAX));
        let c = Constraints::none()
            .with_max_area_mm2(2.0)
            .with_max_power_mw(300.0);
        assert!(c.is_constrained());
        assert!(c.admits(1.9e6, 299.0));
        assert!(!c.admits(2.1e6, 299.0), "area budget must bind");
        assert!(!c.admits(1.9e6, 301.0), "power budget must bind");
    }

    #[test]
    fn penalized_objective_reorders_the_frontier_ranking() {
        let mut f = ParetoFrontier::new();
        // Small design: worse EDP, tiny area. Big design: better EDP, huge.
        f.insert(point(4.0, 4.0, 1.0e6)); // edp 16
        f.insert(point(2.0, 5.0, 9.0e6)); // edp 10
        assert!((f.best_by_edp().unwrap().objectives.edp() - 10.0).abs() < 1e-12);
        // Soft 2 mm² budget at weight 2: big design pays ×(1+2·3.5) = 8.
        let soft = Objective::penalized_edp(Some(2.0), None, 2.0);
        let best = f.best_by_objective(&soft).unwrap();
        assert!((best.objectives.edp() - 16.0).abs() < 1e-12, "small wins");
        // genomes() exposes the members for warm starts.
        assert_eq!(f.genomes().len(), 2);
    }

    #[test]
    fn merge_reproduces_order_independent_union() {
        // Build two frontiers from interleaved halves of one point stream;
        // merging them (either way) must equal inserting the whole stream.
        let mut rng = SplitMix64::new(13);
        let stream: Vec<DesignPoint> = (0..60)
            .map(|_| {
                point(
                    (1 + rng.below(8)) as f64,
                    (1 + rng.below(8)) as f64,
                    (1 + rng.below(8)) as f64,
                )
            })
            .collect();
        let mut whole = ParetoFrontier::new();
        let mut even = ParetoFrontier::new();
        let mut odd = ParetoFrontier::new();
        for (i, p) in stream.iter().enumerate() {
            whole.insert(p.clone());
            if i % 2 == 0 {
                even.insert(p.clone());
            } else {
                odd.insert(p.clone());
            }
        }
        let mut ab = even.clone();
        ab.merge(&odd);
        let mut ba = odd.clone();
        ba.merge(&even);
        assert!(ab.dominance_equal(&whole));
        assert!(ba.dominance_equal(&whole));
        assert!(ab.dominance_equal(&ba));
        assert!(ab.is_mutually_non_dominated());
        // Idempotence: merging a frontier into itself adds nothing.
        let before = ab.genome_keys();
        assert_eq!(ab.clone().merge(&ab), 0);
        assert_eq!(ab.genome_keys(), before);
    }

    #[test]
    fn dominance_equal_distinguishes_real_differences() {
        let mut a = ParetoFrontier::new();
        a.insert(point(1.0, 5.0, 1.0));
        let mut b = a.clone();
        assert!(a.dominance_equal(&b));
        b.insert(point(5.0, 1.0, 1.0));
        assert!(!a.dominance_equal(&b), "b has an unmatched trade-off");
        // Equal objectives under different genomes still count as matched.
        let mut c = ParetoFrontier::new();
        let mut twin = point(1.0, 5.0, 1.0);
        twin.genome.cols = 999;
        c.insert(twin);
        assert!(a.dominance_equal(&c));
        assert_ne!(a.genome_keys(), c.genome_keys());
    }

    #[test]
    fn scalarizations_rank_as_expected() {
        let mut f = ParetoFrontier::new();
        f.insert(point(10.0, 1.0, 100.0)); // edp 10, edap 1000
        f.insert(point(1.0, 8.0, 1.0)); // edp 8, edap 8
        assert!((f.best_by_edp().unwrap().objectives.edp() - 8.0).abs() < 1e-12);
        assert!((f.best_by_edap().unwrap().objectives.edap() - 8.0).abs() < 1e-12);
    }
}
