//! Serializable shard snapshots: a dependency-free binary codec for
//! [`ParetoFrontier`] + [`EvalCache`] contents, so a shard worker can
//! checkpoint its results to a file and a coordinator can merge them.
//!
//! The format is deliberately boring: a fixed magic + version header,
//! little-endian fixed-width integers, `f64` as IEEE-754 bits, one tag
//! byte per enum/`Option`, and length-prefixed counts. Cache entries are
//! written in sorted key order ([`EvalCache::entries`]) and frontier
//! points sorted by genome fingerprint, so encoding is a pure function of
//! the snapshot's contents (merge order never shows in the bytes) and
//! `encode → decode → encode` is byte-identical. Decoding
//! validates everything it reads and returns a [`SnapshotError`] — never
//! panics — on truncated or corrupt input.

use crate::eval::DesignPoint;
use crate::pareto::{Objectives, ParetoFrontier};
use crate::space::{DataflowSet, Genome, ALL_MAPPINGS};
use lego_eval::EvalCache;
use lego_sim::{EnergyBreakdown, LayerPerf, ModelPerf, SparseAccel};
use std::fmt;

/// File magic: identifies a LEGO DSE snapshot.
const MAGIC: &[u8; 8] = b"LEGOSNAP";
/// Current codec version.
///
/// Version 2 marks the cache-key epoch change that came with the
/// `EvalSession` migration: cache entries are now keyed by the session's
/// derived key (genome fingerprint folded with the technology and SRAM
/// models) instead of the bare genome fingerprint. Version-1 snapshots
/// would decode structurally, but their cache entries live in a dead
/// keyspace — every warm-start lookup would silently miss while the
/// entries ride along into future merges — so they are rejected loudly
/// instead.
///
/// Version 3 adds the `evaluated` counter (candidate evaluations the
/// shard's strategies spent), so merge tooling can report per-shard search
/// effort without re-running anything.
const VERSION: u8 = 3;

/// One shard's checkpointed search state: where it ran (shard coordinates,
/// seed, model), what it found (the feasible [`ParetoFrontier`]), and what
/// it computed (the [`EvalCache`] entries, keyed by stable FNV
/// fingerprints so cross-process merging is a set union).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Shard index in `0..shard_count`.
    pub shard_index: u32,
    /// Total shards in the partition (1 = unsharded).
    pub shard_count: u32,
    /// Base RNG seed of the run that produced this snapshot.
    pub seed: u64,
    /// Name of the model that was explored.
    pub model: String,
    /// Candidate evaluations the shard's strategies spent producing this
    /// snapshot (cache hits included). [`Snapshot::absorb`] sums it, so a
    /// merged checkpoint reports the whole partition's search effort.
    pub evaluated: u64,
    /// The shard's feasible Pareto frontier.
    pub frontier: ParetoFrontier,
    /// The shard's memoized `((hw_key, layer_key), perf)` evaluations, in
    /// sorted key order.
    pub cache: Vec<((u64, u64), LayerPerf)>,
}

impl Snapshot {
    /// Merges another shard's snapshot into this one: the frontier folds
    /// in point-wise ([`ParetoFrontier::merge`]) and the caches set-union
    /// on their fingerprint keys with the resident entry winning
    /// collisions (the [`EvalCache::absorb`] rule). Returns
    /// `(frontier_points_added, cache_entries_added)`.
    pub fn absorb(&mut self, other: &Snapshot) -> (usize, usize) {
        self.evaluated = self.evaluated.saturating_add(other.evaluated);
        let joined = self.frontier.merge(&other.frontier);
        let resident = EvalCache::new();
        resident.absorb(self.cache.iter().cloned());
        let added = resident.absorb(other.cache.iter().cloned());
        self.cache = resident.entries();
        (joined, added)
    }

    /// Encodes the snapshot to its canonical byte representation.
    ///
    /// Frontier points are written sorted by genome fingerprint (they are
    /// unique within a frontier) and cache entries in sorted key order, so
    /// the bytes are a pure function of the snapshot's *contents*: merging
    /// the same shard set in any order encodes identically.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.bytes(MAGIC);
        e.u8(VERSION);
        e.u32(self.shard_index);
        e.u32(self.shard_count);
        e.u64(self.seed);
        e.str(&self.model);
        e.u64(self.evaluated);
        let mut points: Vec<&DesignPoint> = self.frontier.points().iter().collect();
        points.sort_by_key(|p| p.genome.key());
        e.u32(points.len() as u32);
        for p in points {
            encode_point(&mut e, p);
        }
        e.u32(self.cache.len() as u32);
        for ((hw, layer), perf) in &self.cache {
            e.u64(*hw);
            e.u64(*layer);
            encode_layer_perf(&mut e, perf);
        }
        e.buf
    }

    /// Decodes a snapshot, validating magic, version, every enum tag, and
    /// that the input ends exactly where the data does.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] describing the first problem found;
    /// truncated or corrupt input never panics.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut d = Dec { buf: bytes, pos: 0 };
        if d.bytes(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.u8()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let shard_index = d.u32()?;
        let shard_count = d.u32()?;
        let seed = d.u64()?;
        let model = d.str()?;
        let evaluated = d.u64()?;
        let mut frontier = ParetoFrontier::new();
        let n_points = d.u32()?;
        for _ in 0..n_points {
            frontier.insert(decode_point(&mut d)?);
        }
        let n_entries = d.u32()?;
        let mut cache = Vec::new();
        for _ in 0..n_entries {
            let hw = d.u64()?;
            let layer = d.u64()?;
            cache.push(((hw, layer), decode_layer_perf(&mut d)?));
        }
        d.done()?;
        Ok(Snapshot {
            shard_index,
            shard_count,
            seed,
            model,
            evaluated,
            frontier,
            cache,
        })
    }

    /// Writes the encoded snapshot to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.encode()).map_err(SnapshotError::Io)
    }

    /// Reads and decodes a snapshot from a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the file cannot be read, or the
    /// codec error if its contents are invalid.
    pub fn read_from(path: &std::path::Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::decode(&std::fs::read(path).map_err(SnapshotError::Io)?)
    }
}

/// Why a snapshot failed to decode (or to reach disk).
#[derive(Debug)]
pub enum SnapshotError {
    /// Input ended before the field starting at byte `at` was complete.
    Truncated {
        /// Offset of the incomplete field.
        at: usize,
        /// Bytes the field still needed.
        needed: usize,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The codec version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// An enum/option tag byte held an undefined value.
    InvalidTag {
        /// Which field was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// Well-formed data followed by garbage.
    TrailingBytes(usize),
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { at, needed } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} more bytes at offset {at}"
                )
            }
            SnapshotError::BadMagic => write!(f, "not a LEGO DSE snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::InvalidTag { what, tag } => {
                write!(f, "invalid {what} tag {tag:#04x}")
            }
            SnapshotError::InvalidUtf8 => write!(f, "snapshot string is not valid UTF-8"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the snapshot payload")
            }
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A snapshot failure folds into the workspace-wide
/// [`lego_eval::EvalError`] hierarchy: each variant maps onto its exact
/// [`lego_eval::CodecError`] twin (the two codecs share the same decode
/// discipline), so snapshot problems carry the same stable
/// [`lego_eval::StatusCode`]s as wire-payload problems.
impl From<SnapshotError> for lego_eval::EvalError {
    fn from(e: SnapshotError) -> lego_eval::EvalError {
        use lego_eval::CodecError;
        lego_eval::EvalError::Codec(match e {
            SnapshotError::Truncated { at, needed } => CodecError::Truncated { at, needed },
            SnapshotError::BadMagic => CodecError::BadMagic,
            SnapshotError::UnsupportedVersion(v) => CodecError::UnsupportedVersion(v),
            SnapshotError::InvalidTag { what, tag } => CodecError::InvalidTag { what, tag },
            SnapshotError::InvalidUtf8 => CodecError::InvalidUtf8,
            SnapshotError::TrailingBytes(n) => CodecError::TrailingBytes(n),
            SnapshotError::Io(e) => CodecError::Io(e),
        })
    }
}

/// Little-endian byte writer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let at = self.pos;
        let end = at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                self.pos = end;
                Ok(&self.buf[at..end])
            }
            None => Err(SnapshotError::Truncated {
                at,
                needed: n - (self.buf.len() - at),
            }),
        }
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::InvalidUtf8)
    }
    fn done(&self) -> Result<(), SnapshotError> {
        match self.buf.len() - self.pos {
            0 => Ok(()),
            n => Err(SnapshotError::TrailingBytes(n)),
        }
    }
}

fn encode_genome(e: &mut Enc, g: &Genome) {
    e.i64(g.rows);
    e.i64(g.cols);
    e.u32(g.clusters.0);
    e.u32(g.clusters.1);
    e.u64(g.buffer_kb);
    e.u32(g.dram_gbps);
    e.u8(g.dataflows.bits());
    match g.tile_cap {
        None => e.u8(0),
        Some(t) => {
            e.u8(1);
            e.i64(t);
        }
    }
    let sparse = SparseAccel::ALL
        .iter()
        .position(|a| *a == g.sparse)
        .expect("known sparse feature");
    e.u8(sparse as u8);
}

fn decode_genome(d: &mut Dec<'_>) -> Result<Genome, SnapshotError> {
    let rows = d.i64()?;
    let cols = d.i64()?;
    let clusters = (d.u32()?, d.u32()?);
    let buffer_kb = d.u64()?;
    let dram_gbps = d.u32()?;
    let bits = d.u8()?;
    let dataflows = DataflowSet::from_bits(bits).ok_or(SnapshotError::InvalidTag {
        what: "dataflow set",
        tag: bits,
    })?;
    let tile_cap = match d.u8()? {
        0 => None,
        1 => Some(d.i64()?),
        tag => {
            return Err(SnapshotError::InvalidTag {
                what: "tile cap option",
                tag,
            })
        }
    };
    let tag = d.u8()?;
    let sparse = *SparseAccel::ALL
        .get(tag as usize)
        .ok_or(SnapshotError::InvalidTag {
            what: "sparse feature",
            tag,
        })?;
    Ok(Genome {
        rows,
        cols,
        clusters,
        buffer_kb,
        dram_gbps,
        dataflows,
        tile_cap,
        sparse,
    })
}

fn encode_point(e: &mut Enc, p: &DesignPoint) {
    encode_genome(e, &p.genome);
    e.f64(p.objectives.latency_cycles);
    e.f64(p.objectives.energy_pj);
    e.f64(p.objectives.area_um2);
    e.f64(p.peak_power_mw);
    e.u8(u8::from(p.feasible));
    e.i64(p.perf.cycles);
    e.i64(p.perf.ops);
    e.f64(p.perf.gops);
    e.f64(p.perf.watts);
    e.f64(p.perf.gops_per_watt);
    e.f64(p.perf.utilization);
    e.f64(p.perf.ppu_fraction);
    e.f64(p.perf.instr_gbps);
}

fn decode_point(d: &mut Dec<'_>) -> Result<DesignPoint, SnapshotError> {
    let genome = decode_genome(d)?;
    let objectives = Objectives {
        latency_cycles: d.f64()?,
        energy_pj: d.f64()?,
        area_um2: d.f64()?,
    };
    let peak_power_mw = d.f64()?;
    let feasible = match d.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(SnapshotError::InvalidTag {
                what: "feasible flag",
                tag,
            })
        }
    };
    let perf = ModelPerf {
        cycles: d.i64()?,
        ops: d.i64()?,
        gops: d.f64()?,
        watts: d.f64()?,
        gops_per_watt: d.f64()?,
        utilization: d.f64()?,
        ppu_fraction: d.f64()?,
        instr_gbps: d.f64()?,
    };
    Ok(DesignPoint {
        genome,
        objectives,
        perf,
        peak_power_mw,
        feasible,
    })
}

fn encode_layer_perf(e: &mut Enc, p: &LayerPerf) {
    e.i64(p.cycles);
    e.f64(p.utilization);
    e.i64(p.macs);
    e.i64(p.dram_bytes);
    e.i64(p.l1_accesses);
    e.i64(p.ppu_cycles);
    e.i64(p.noc_cycles);
    e.f64(p.energy.mac_pj);
    e.f64(p.energy.sram_pj);
    e.f64(p.energy.dram_pj);
    e.f64(p.energy.noc_pj);
    e.f64(p.energy.static_pj);
    e.f64(p.energy.ppu_pj);
    e.f64(p.energy.sparse_pj);
    let mapping = ALL_MAPPINGS
        .iter()
        .position(|m| *m == p.mapping)
        .expect("known mapping");
    e.u8(mapping as u8);
}

fn decode_layer_perf(d: &mut Dec<'_>) -> Result<LayerPerf, SnapshotError> {
    let cycles = d.i64()?;
    let utilization = d.f64()?;
    let macs = d.i64()?;
    let dram_bytes = d.i64()?;
    let l1_accesses = d.i64()?;
    let ppu_cycles = d.i64()?;
    let noc_cycles = d.i64()?;
    let energy = EnergyBreakdown {
        mac_pj: d.f64()?,
        sram_pj: d.f64()?,
        dram_pj: d.f64()?,
        noc_pj: d.f64()?,
        static_pj: d.f64()?,
        ppu_pj: d.f64()?,
        sparse_pj: d.f64()?,
    };
    let tag = d.u8()?;
    let mapping = *ALL_MAPPINGS
        .get(tag as usize)
        .ok_or(SnapshotError::InvalidTag {
            what: "spatial mapping",
            tag,
        })?;
    Ok(LayerPerf {
        cycles,
        utilization,
        macs,
        dram_bytes,
        l1_accesses,
        ppu_cycles,
        noc_cycles,
        energy,
        mapping,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore_shard, DesignSpace, ExploreOptions};
    use lego_workloads::zoo;

    fn sample_snapshot() -> Snapshot {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let run = explore_shard(
            &model,
            &space.shard(1, 2),
            &mut crate::default_strategies(0xA11CE),
            &ExploreOptions {
                budget_per_strategy: 12,
                ..Default::default()
            },
        );
        run.snapshot(&model.name, 0xA11CE)
    }

    #[test]
    fn encode_decode_roundtrips_byte_identically() {
        let snap = sample_snapshot();
        assert!(!snap.frontier.is_empty());
        assert!(!snap.cache.is_empty());
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("own encoding decodes");
        assert_eq!(decoded.shard_index, 1);
        assert_eq!(decoded.shard_count, 2);
        assert_eq!(decoded.seed, 0xA11CE);
        assert_eq!(decoded.model, snap.model);
        assert!(snap.evaluated > 0, "strategies spent evaluations");
        assert_eq!(decoded.evaluated, snap.evaluated);
        assert_eq!(decoded.frontier.len(), snap.frontier.len());
        assert_eq!(decoded.frontier.genome_keys(), snap.frontier.genome_keys());
        assert_eq!(decoded.cache, snap.cache);
        // Canonical form: re-encoding the decoded snapshot is the identity.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let bytes = sample_snapshot().encode();
        for len in 0..bytes.len() {
            match Snapshot::decode(&bytes[..len]) {
                Err(_) => {}
                Ok(_) => panic!("decoding a {len}-byte prefix must fail"),
            }
        }
    }

    #[test]
    fn corruption_is_reported_not_panicked() {
        let good = sample_snapshot().encode();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // Unknown version.
        let mut bad = good.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::UnsupportedVersion(0xEE))
        ));
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::TrailingBytes(1))
        ));
        // Every single-byte corruption either decodes (the byte was inert
        // for validation — e.g. part of a float) or errors; none panic.
        for i in 0..good.len() {
            let mut fuzz = good.clone();
            fuzz[i] ^= 0xA5;
            let _ = Snapshot::decode(&fuzz);
        }
    }

    #[test]
    fn merge_order_does_not_change_the_bytes() {
        // The coordinator may receive shard snapshots in any order; the
        // canonical encoding (sorted frontier + sorted cache) makes the
        // merged checkpoint byte-identical either way.
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let shard_snap = |i: u32| {
            explore_shard(
                &model,
                &space.shard(i, 2),
                &mut crate::default_strategies(9),
                &ExploreOptions {
                    budget_per_strategy: 16,
                    ..Default::default()
                },
            )
            .snapshot(&model.name, 9)
        };
        let (a, b) = (shard_snap(0), shard_snap(1));
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        // Align the metadata a coordinator would rewrite anyway.
        for s in [&mut ab, &mut ba] {
            s.shard_index = 0;
            s.shard_count = 1;
        }
        assert_eq!(ab.encode(), ba.encode());
    }

    #[test]
    fn absorb_merges_frontier_and_cache() {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let mut halves: Vec<Snapshot> = (0..2)
            .map(|i| {
                explore_shard(
                    &model,
                    &space.shard(i, 2),
                    &mut [Box::new(crate::GridSearch) as Box<dyn crate::SearchStrategy>],
                    &ExploreOptions::default(),
                )
                .snapshot(&model.name, 0)
            })
            .collect();
        let second = halves.pop().expect("two shards");
        let mut merged = halves.pop().expect("two shards");
        let total_evaluated = merged.evaluated + second.evaluated;
        merged.absorb(&second);
        // Search effort sums across the partition.
        assert_eq!(merged.evaluated, total_evaluated);
        // The merged cache is the key-union, still canonically sorted.
        assert!(merged.cache.windows(2).all(|w| w[0].0 < w[1].0));
        let keys: std::collections::HashSet<(u64, u64)> =
            merged.cache.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), merged.cache.len());
        // And the merged frontier equals the single-process grid frontier.
        let single = crate::explore(
            &model,
            &space,
            &mut [Box::new(crate::GridSearch) as Box<dyn crate::SearchStrategy>],
            &ExploreOptions::default(),
        );
        assert!(merged.frontier.dominance_equal(&single.frontier));
    }
}
