//! # lego-explorer — hardware design-space exploration for LEGO
//!
//! The paper's mapping search (§VI-A) picks a per-layer dataflow for a
//! *fixed* hardware configuration. This crate searches the hardware itself:
//! the joint space of array shape × buffer capacity × DRAM bandwidth ×
//! fused-dataflow set × tiling, for a target [`Model`] from
//! `lego-workloads`.
//!
//! The moving parts:
//!
//! * [`DesignSpace`] / [`Genome`] — the axes and one candidate configuration
//!   ([`Genome::to_hw_config`] materializes the simulator's `HwConfig`);
//! * [`SearchStrategy`] — pluggable search: [`GridSearch`] (exhaustive),
//!   [`RandomSearch`] (seeded sampling), and [`EvolutionarySearch`]
//!   ((μ+λ) with mutation and crossover over config genomes);
//! * [`EvalCache`] — a memoized, sharded map from (hardware fingerprint,
//!   layer fingerprint) to layer performance, shared by every strategy and
//!   worker thread so overlapping searches pay for each simulation once;
//! * [`Evaluator`] — batch evaluation on a `std::thread` + channel worker
//!   pool, deterministic regardless of interleaving;
//! * [`ParetoFrontier`] — the surviving (latency, energy, area) trade-offs,
//!   with EDP/EDAP scalarizations for ranking.
//!
//! ```
//! use lego_explorer::{explore, DesignSpace, ExploreOptions, Genome};
//!
//! let model = lego_workloads::zoo::lenet();
//! let result = explore(
//!     &model,
//!     &DesignSpace::tiny(),
//!     &mut lego_explorer::default_strategies(7),
//!     &ExploreOptions { budget_per_strategy: 16, ..Default::default() },
//! );
//! let best = result.frontier.best_by_edp().unwrap();
//! assert!(best.objectives.edp() > 0.0);
//! assert!(result.cache_hits > 0); // strategies shared evaluations
//! ```
//!
//! # Sharded exploration
//!
//! Production-size sweeps split the space across processes or hosts.
//! [`DesignSpace::shard`] deterministically partitions the genome
//! enumeration (and splits each strategy's RNG stream), a worker explores
//! its shard with [`explore_shard`] and checkpoints the resulting
//! frontier + evaluation cache as a [`Snapshot`] file, and a coordinator
//! merges snapshots with [`ParetoFrontier::merge`] / [`EvalCache::absorb`]
//! (or [`Snapshot::absorb`]). For a disjoint grid partition, the merged
//! frontier is dominance-equal to the single-process frontier — pinned by
//! tests and by the `dse_shard` CI job. The same workflow runs in-process
//! through [`explore_sharded`]:
//!
//! ```
//! use lego_explorer::{explore_sharded, DesignSpace, ExploreOptions};
//!
//! let model = lego_workloads::zoo::lenet();
//! let result = explore_sharded(
//!     &model,
//!     &DesignSpace::tiny(),
//!     4, // shards
//!     7, // seed
//!     &ExploreOptions { budget_per_strategy: 8, ..Default::default() },
//! );
//! assert_eq!(result.shards.len(), 4);
//! assert!(result.frontier.is_mutually_non_dominated());
//! // Shard 2's checkpoint, exactly as a worker process would write it:
//! let snap = result.shards[2].snapshot(&model.name, 7);
//! let bytes = snap.encode();
//! assert_eq!(
//!     lego_explorer::Snapshot::decode(&bytes).unwrap().encode(),
//!     bytes,
//! );
//! ```

pub mod eval;
pub mod pareto;
pub mod rng;
pub mod snapshot;
pub mod space;
pub mod strategy;

pub use eval::{DesignPoint, Evaluator};
pub use lego_eval::{layer_key, EvalCache, EvalSession};
pub use lego_model::SparseAccel;
pub use pareto::{BaseObjective, Constraints, Objective, Objectives, ParetoFrontier};
pub use rng::SplitMix64;
pub use snapshot::{Snapshot, SnapshotError};
pub use space::{DataflowSet, DesignSpace, Genome, SpaceShard, ALL_MAPPINGS};
pub use strategy::{EvolutionarySearch, GridSearch, RandomSearch, SearchReport, SearchStrategy};

use lego_model::TechModel;
use lego_obs::Obs;
use lego_sim::LayerPerf;
use lego_workloads::Model;

/// Exploration-wide knobs.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Evaluation budget handed to each strategy.
    pub budget_per_strategy: usize,
    /// Worker threads (0 = automatic).
    pub threads: usize,
    /// Technology model used for every evaluation.
    pub tech: TechModel,
    /// Hard area/power feasibility budgets (default: unconstrained).
    pub constraints: Constraints,
    /// The scalarization strategies minimize (default: plain EDP). Soft
    /// budgets go here as [`Objective::Penalized`]; they compose with the
    /// hard `constraints` filter.
    pub objective: Objective,
    /// Genomes seeding the search — typically
    /// [`ParetoFrontier::genomes`] from a previous run. They are evaluated
    /// into the frontier up front and offered to every strategy via
    /// [`SearchStrategy::warm_start`] (the evolutionary search starts its
    /// population from them). Empty = cold start, bit-identical to the
    /// pre-warm-start behavior.
    pub warm_start: Vec<Genome>,
    /// Evaluation-cache entries preloaded into the fresh session before
    /// anything is evaluated — typically a merged
    /// [`Snapshot`]'s `cache` from a previous (possibly
    /// distributed) run. Where [`ExploreOptions::warm_start`] warm-starts
    /// the *frontier*, this warm-starts the *cache*: layer simulations a
    /// peer already ran are answered as hits instead of recomputed.
    /// Results are unchanged either way (entries are deterministic), only
    /// the work is. Empty = cold cache.
    pub warm_cache: Vec<((u64, u64), LayerPerf)>,
    /// Observability handle threaded through the evaluator (and the
    /// session inside it) and the strategies: per-phase evaluation spans,
    /// cache hit/miss counters, an `explore/shard` span per shard run
    /// with `explore/shard/strategy` children and `explore.evaluated`
    /// counts, end-of-run `cache.resident_entries`/`cache.resident_bytes`
    /// gauges, ES `explore/generation` spans.
    /// Default: [`Obs::disabled`] — a near-no-op handle. Instrumentation
    /// never changes search results.
    pub obs: Obs,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            budget_per_strategy: 512,
            threads: 0,
            tech: TechModel::default(),
            constraints: Constraints::none(),
            objective: Objective::EDP,
            warm_start: Vec::new(),
            warm_cache: Vec::new(),
            obs: Obs::disabled(),
        }
    }
}

/// Outcome of an exploration: the frontier, per-strategy reports, and the
/// shared-cache statistics.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// Mutually non-dominated design points over (latency, energy, area).
    pub frontier: ParetoFrontier,
    /// One report per strategy, in execution order.
    pub reports: Vec<SearchReport>,
    /// Layer evaluations answered from the shared cache.
    pub cache_hits: u64,
    /// Layer evaluations that ran the simulator.
    pub cache_misses: u64,
}

impl ExplorationResult {
    /// The globally best point by energy-delay product.
    pub fn best_by_edp(&self) -> Option<&DesignPoint> {
        self.frontier.best_by_edp()
    }
}

/// The standard strategy portfolio: exhaustive grid, seeded random
/// sampling, and a (μ+λ) evolution strategy, all sharing one cache.
pub fn default_strategies(seed: u64) -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(GridSearch),
        Box::new(RandomSearch { seed }),
        Box::new(EvolutionarySearch {
            seed: seed ^ 0x5eed,
            ..Default::default()
        }),
    ]
}

/// Runs every strategy over `space` against `model`, accumulating one
/// shared [`ParetoFrontier`] through one shared [`EvalCache`].
pub fn explore(
    model: &Model,
    space: &DesignSpace,
    strategies: &mut [Box<dyn SearchStrategy>],
    opts: &ExploreOptions,
) -> ExplorationResult {
    let run = explore_shard(model, &space.full(), strategies, opts);
    ExplorationResult {
        frontier: run.frontier,
        reports: run.reports,
        cache_hits: run.cache_hits,
        cache_misses: run.cache_misses,
    }
}

/// One shard's exploration outcome: everything [`ExplorationResult`]
/// carries, plus the shard coordinates and the drained evaluation-cache
/// entries a worker checkpoints ([`ShardRunResult::snapshot`]).
#[derive(Debug, Clone)]
pub struct ShardRunResult {
    /// This shard's index in `0..shard_count`.
    pub shard_index: u32,
    /// Total shards in the partition.
    pub shard_count: u32,
    /// The shard's feasible Pareto frontier.
    pub frontier: ParetoFrontier,
    /// One report per strategy, in execution order.
    pub reports: Vec<SearchReport>,
    /// Layer evaluations answered from the shard's cache.
    pub cache_hits: u64,
    /// Layer evaluations that ran the simulator.
    pub cache_misses: u64,
    /// The shard's memoized evaluations in canonical (sorted-key) order.
    pub cache: Vec<((u64, u64), LayerPerf)>,
}

impl ShardRunResult {
    /// Candidate evaluations the shard's strategies spent (the per-strategy
    /// [`SearchReport::evaluated`] counts summed; cache hits included).
    pub fn evaluated(&self) -> u64 {
        self.reports.iter().map(|r| r.evaluated as u64).sum()
    }

    /// Packages the shard's results as a serializable [`Snapshot`].
    pub fn snapshot(&self, model: &str, seed: u64) -> Snapshot {
        Snapshot {
            shard_index: self.shard_index,
            shard_count: self.shard_count,
            seed,
            model: model.to_string(),
            evaluated: self.evaluated(),
            frontier: self.frontier.clone(),
            cache: self.cache.clone(),
        }
    }
}

/// Runs every strategy over one [`SpaceShard`] — the unit of work a
/// distributed sweep hands to each process. The full shard
/// ([`DesignSpace::full`]) reproduces [`explore`] exactly; any other
/// shard enumerates its strided slice of the space and splits the
/// stochastic strategies' RNG streams deterministically.
pub fn explore_shard(
    model: &Model,
    shard: &SpaceShard<'_>,
    strategies: &mut [Box<dyn SearchStrategy>],
    opts: &ExploreOptions,
) -> ShardRunResult {
    let mut evaluator = Evaluator::new(model, opts.tech)
        .with_constraints(opts.constraints)
        .with_objective(opts.objective)
        .with_obs(opts.obs.clone());
    if opts.threads > 0 {
        evaluator = evaluator.with_threads(opts.threads);
    }
    // Warm cache: absorb a previous run's evaluations before anything is
    // computed, so even the warm-start genome batch below hits.
    if !opts.warm_cache.is_empty() {
        evaluator.warm_cache(opts.warm_cache.iter().cloned());
    }
    let mut frontier = ParetoFrontier::new();
    // Warm start: fold the seed genomes (usually a previous frontier) into
    // this run's frontier immediately, and hand them to every strategy.
    if !opts.warm_start.is_empty() {
        for p in evaluator.eval_batch(&opts.warm_start) {
            if p.feasible {
                frontier.insert(p);
            }
        }
        for s in strategies.iter_mut() {
            s.warm_start(&opts.warm_start);
        }
    }
    let reports: Vec<SearchReport> = {
        let shard_span = opts.obs.span("explore/shard");
        strategies
            .iter_mut()
            .map(|s| {
                let _span = shard_span.child("strategy");
                let report = s.run(shard, &evaluator, &mut frontier, opts.budget_per_strategy);
                opts.obs.count("explore.evaluated", report.evaluated as u64);
                report
            })
            .collect()
    };
    // End-of-run cache gauges: entry count and resident bytes are pure
    // functions of the evaluations this shard performed, so they are safe
    // for deterministic summaries (unlike the racing hit/miss split,
    // which provenance accounts for per request instead).
    let gauges = evaluator.cache().gauges();
    opts.obs
        .record("cache.resident_entries", gauges.entries as f64);
    opts.obs
        .record("cache.resident_bytes", gauges.resident_bytes as f64);
    ShardRunResult {
        shard_index: shard.index(),
        shard_count: shard.count(),
        frontier,
        reports,
        cache_hits: evaluator.cache().hits(),
        cache_misses: evaluator.cache().misses(),
        cache: evaluator.cache().entries(),
    }
}

/// Outcome of an in-process sharded exploration: the merged frontier and
/// cache, plus each shard's individual result.
#[derive(Debug)]
pub struct ShardedExplorationResult {
    /// The merged (union) Pareto frontier over all shards. For a grid
    /// partition whose budget covers every shard, this is dominance-equal
    /// to an *exhaustive* single-process frontier — note the per-shard
    /// budget caveat on [`explore_sharded`].
    pub frontier: ParetoFrontier,
    /// The merged evaluation cache — the set union of every shard's
    /// entries under their stable fingerprint keys.
    pub cache: EvalCache,
    /// Per-shard results, in shard order (shard `i` at index `i`).
    pub shards: Vec<ShardRunResult>,
    /// Cache hits summed over all shards.
    pub cache_hits: u64,
    /// Cache misses summed over all shards. `cache_misses - cache.len()`
    /// is the duplicated simulation work a shared cache would have saved —
    /// the price of shard isolation.
    pub cache_misses: u64,
}

impl ShardedExplorationResult {
    /// The globally best point by energy-delay product.
    pub fn best_by_edp(&self) -> Option<&DesignPoint> {
        self.frontier.best_by_edp()
    }

    /// Simulations shards re-ran that a peer had already computed
    /// (cross-shard duplicate work the snapshot/merge workflow exposes).
    pub fn duplicate_evals(&self) -> u64 {
        self.cache_misses.saturating_sub(self.cache.len() as u64)
    }
}

/// Explores `space` split into `shards` disjoint slices — each with its
/// own [`default_strategies`] portfolio seeded from `seed` and split per
/// shard — then merges the per-shard frontiers and caches, exactly as a
/// coordinator merging worker snapshot files would. Every shard's
/// evaluation batch still runs on the worker thread pool, so this is the
/// in-process rehearsal of the distributed workflow (and the reference
/// the `dse_shard` binary's `verify` mode checks against).
///
/// `opts.budget_per_strategy` applies **per shard**: `n` shards spend up
/// to `n ×` the budget of one [`explore`] call. In particular, comparing
/// the merged grid frontier against a single-process run is only
/// apples-to-apples when the budget covers the grid on both sides (each
/// shard holds ~`size/n` genomes vs the full `size` in one process —
/// with a budget in between, the shards are exhaustive while the single
/// process truncates).
pub fn explore_sharded(
    model: &Model,
    space: &DesignSpace,
    shards: u32,
    seed: u64,
    opts: &ExploreOptions,
) -> ShardedExplorationResult {
    let shards = shards.max(1);
    let mut outcomes = Vec::with_capacity(shards as usize);
    for i in 0..shards {
        let shard = space.shard(i, shards);
        outcomes.push(explore_shard(
            model,
            &shard,
            &mut default_strategies(seed),
            opts,
        ));
    }
    let mut frontier = ParetoFrontier::new();
    let cache = EvalCache::new();
    let (mut hits, mut misses) = (0, 0);
    for run in &outcomes {
        frontier.merge(&run.frontier);
        cache.absorb(run.cache.iter().cloned());
        hits += run.cache_hits;
        misses += run.cache_misses;
    }
    ShardedExplorationResult {
        frontier,
        cache,
        shards: outcomes,
        cache_hits: hits,
        cache_misses: misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_workloads::zoo;

    #[test]
    fn strategies_share_the_eval_cache() {
        // Grid covers the whole tiny space; random sampling afterwards can
        // only revisit configurations, so every one of its layer lookups —
        // and therefore some lookups overall — must hit the shared cache.
        let model = zoo::lenet();
        let mut strategies: Vec<Box<dyn SearchStrategy>> =
            vec![Box::new(GridSearch), Box::new(RandomSearch { seed: 3 })];
        let result = explore(
            &model,
            &DesignSpace::tiny(),
            &mut strategies,
            &ExploreOptions {
                budget_per_strategy: 32,
                ..Default::default()
            },
        );
        assert!(
            result.cache_hits > 0,
            "overlapping strategies must share work"
        );
        assert!(result.cache_misses > 0);
        assert_eq!(result.reports.len(), 2);
        assert!(result.frontier.is_mutually_non_dominated());
    }

    #[test]
    fn exploration_is_deterministic_end_to_end() {
        let model = zoo::lenet();
        let run = || {
            let result = explore(
                &model,
                &DesignSpace::tiny(),
                &mut default_strategies(11),
                &ExploreOptions {
                    budget_per_strategy: 24,
                    ..Default::default()
                },
            );
            let best = result.best_by_edp().unwrap();
            (best.genome, best.objectives.edp())
        };
        let (g1, e1) = run();
        let (g2, e2) = run();
        assert_eq!(g1, g2);
        assert!((e1 - e2).abs() < 1e-9);
    }

    #[test]
    fn constraints_are_hard_feasibility_filters() {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        // A tight area budget: big multi-cluster designs must be excluded
        // from the frontier even when they dominate on latency.
        let constrained = explore(
            &model,
            &space,
            &mut [Box::new(GridSearch) as Box<dyn SearchStrategy>],
            &ExploreOptions {
                constraints: Constraints::none().with_max_area_mm2(2.5),
                ..Default::default()
            },
        );
        assert!(
            !constrained.frontier.is_empty(),
            "budget admits small designs"
        );
        for p in constrained.frontier.points() {
            assert!(p.feasible);
            assert!(p.objectives.area_um2 <= 2.5e6, "{:?}", p.genome);
        }
        // The unconstrained frontier keeps designs the budget rejects.
        let free = explore(
            &model,
            &space,
            &mut [Box::new(GridSearch) as Box<dyn SearchStrategy>],
            &ExploreOptions::default(),
        );
        assert!(free
            .frontier
            .points()
            .iter()
            .any(|p| p.objectives.area_um2 > 2.5e6));
        // Constrained best can never beat the unconstrained best.
        let cb = constrained.best_by_edp().unwrap().objectives.edp();
        let fb = free.best_by_edp().unwrap().objectives.edp();
        assert!(fb <= cb + 1e-9);
    }

    #[test]
    fn cluster_axis_is_searched() {
        // The tiny space carries (2,2) cluster genomes; the grid must
        // evaluate them and the frontier must record feasibility for all.
        let model = zoo::resnet50();
        let result = explore(
            &model,
            &DesignSpace::tiny(),
            &mut [Box::new(GridSearch) as Box<dyn SearchStrategy>],
            &ExploreOptions::default(),
        );
        assert_eq!(result.reports[0].evaluated, DesignSpace::tiny().size());
        // Multi-cluster designs genuinely traded off: at least one reached
        // the unconstrained frontier on a compute-heavy model (they buy
        // latency with area/NoC overhead).
        assert!(result
            .frontier
            .points()
            .iter()
            .any(|p| p.genome.clusters != (1, 1)));
    }

    #[test]
    fn sparse_axis_pays_off_only_on_sparse_models() {
        // Tiny space × the sparse axis, on a pruned model: grid search must
        // put a skipping design on the frontier (it dominates on EDP), and
        // the combined-space best must beat the dense-only best.
        let sparse_space = DesignSpace {
            sparse_accels: SparseAccel::ALL.to_vec(),
            ..DesignSpace::tiny()
        };
        let pruned = zoo::prune_weights(
            zoo::lenet(),
            lego_workloads::DensityModel::two_to_four(),
            "@2:4",
        );
        let run = |model: &lego_workloads::Model, space: &DesignSpace| {
            explore(
                model,
                space,
                &mut [Box::new(GridSearch) as Box<dyn SearchStrategy>],
                &ExploreOptions::default(),
            )
        };
        let sparse_result = run(&pruned, &sparse_space);
        assert!(sparse_result
            .frontier
            .points()
            .iter()
            .any(|p| p.genome.sparse == SparseAccel::Skipping));
        let dense_space_result = run(&pruned, &DesignSpace::tiny());
        assert!(
            sparse_result.best_by_edp().unwrap().objectives.edp()
                < dense_space_result.best_by_edp().unwrap().objectives.edp(),
            "skipping hardware must win on a 2:4 model"
        );
        // On the *dense* model the sparse frontends are pure area overhead:
        // the best design must not carry one.
        let dense_model_result = run(&zoo::lenet(), &sparse_space);
        assert_eq!(
            dense_model_result.best_by_edp().unwrap().genome.sparse,
            SparseAccel::None
        );
    }

    #[test]
    fn warm_start_seeds_the_search_and_never_hurts() {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        // A first exploration produces a frontier…
        let first = explore(
            &model,
            &space,
            &mut default_strategies(7),
            &ExploreOptions {
                budget_per_strategy: 24,
                ..Default::default()
            },
        );
        let seed_genomes = first.frontier.genomes();
        assert!(!seed_genomes.is_empty());
        // …which warm-starts an ES-only follow-up run with a tiny budget.
        let es_only = || {
            vec![Box::new(EvolutionarySearch {
                seed: 99,
                mu: 4,
                lambda: 4,
                ..Default::default()
            }) as Box<dyn SearchStrategy>]
        };
        let warm_opts = ExploreOptions {
            budget_per_strategy: 8,
            warm_start: seed_genomes.clone(),
            ..Default::default()
        };
        let warm = explore(&model, &space, &mut es_only(), &warm_opts);
        let cold = explore(
            &model,
            &space,
            &mut es_only(),
            &ExploreOptions {
                budget_per_strategy: 8,
                ..Default::default()
            },
        );
        // The warm run starts from the previous frontier, so its best can
        // never be worse than what that frontier already achieved…
        let prev_best = first.best_by_edp().unwrap().objectives.edp();
        let warm_best = warm.best_by_edp().unwrap().objectives.edp();
        assert!(warm_best <= prev_best + 1e-9);
        // …and in particular not worse than the cold tiny-budget run.
        assert!(warm_best <= cold.best_by_edp().unwrap().objectives.edp() + 1e-9);
        // Warm starting is deterministic, too.
        let warm2 = explore(&model, &space, &mut es_only(), &warm_opts);
        assert_eq!(
            warm.best_by_edp().unwrap().genome,
            warm2.best_by_edp().unwrap().genome
        );
    }

    #[test]
    fn warm_cache_answers_a_repeat_run_without_simulating() {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let opts = ExploreOptions {
            budget_per_strategy: 16,
            ..Default::default()
        };
        let cold = explore(&model, &space, &mut default_strategies(7), &opts);
        assert!(cold.cache_misses > 0);
        // Checkpoint the cold run exactly as a shard worker would…
        let snap = explore_shard(&model, &space.full(), &mut default_strategies(7), &opts)
            .snapshot(&model.name, 7);
        // …and absorb the snapshot's cache into a fresh run's evaluator.
        let warm = explore(
            &model,
            &space,
            &mut default_strategies(7),
            &ExploreOptions {
                warm_cache: snap.cache.clone(),
                ..opts
            },
        );
        // Same seed, same budget: every layer evaluation is already in the
        // absorbed cache, so the warm run never touches the simulator…
        assert_eq!(warm.cache_misses, 0, "warm cache must answer everything");
        assert!(warm.cache_hits > 0);
        // …and the results are bit-identical to the cold run.
        assert_eq!(warm.frontier.genome_keys(), cold.frontier.genome_keys());
        let (w, c) = (warm.best_by_edp().unwrap(), cold.best_by_edp().unwrap());
        assert_eq!(w.genome, c.genome);
        assert_eq!(w.perf, c.perf);
    }

    #[test]
    fn penalized_objective_steers_without_disqualifying() {
        let model = zoo::resnet50();
        let space = DesignSpace::tiny();
        let run = |objective: Objective| {
            explore(
                &model,
                &space,
                &mut [Box::new(GridSearch) as Box<dyn SearchStrategy>],
                &ExploreOptions {
                    objective,
                    ..Default::default()
                },
            )
        };
        let plain = run(Objective::EDP);
        // Soft 2.5 mm² budget: the EDP-best big design gets penalized, so
        // the reported best shrinks — but unlike the hard constraint, the
        // big design is still on the frontier.
        let soft = run(Objective::penalized_edp(Some(2.5), None, 8.0));
        let plain_best = plain.reports[0].best.as_ref().unwrap();
        let soft_best = soft.reports[0].best.as_ref().unwrap();
        assert!(plain_best.objectives.area_um2 > 2.5e6, "EDP-best is big");
        assert!(
            soft_best.objectives.area_um2 < plain_best.objectives.area_um2,
            "soft budget must steer toward smaller designs"
        );
        assert!(soft
            .frontier
            .points()
            .iter()
            .any(|p| p.objectives.area_um2 > 2.5e6));
    }

    #[test]
    fn four_shard_union_is_dominance_equal_on_mobilenet_v2() {
        // The acceptance invariant of the sharded workflow: a 4-shard grid
        // search, merged, describes exactly the trade-off surface the
        // single-process grid finds on MobileNetV2.
        let model = zoo::mobilenet_v2();
        let space = DesignSpace::tiny();
        let grid_only = || vec![Box::new(GridSearch) as Box<dyn SearchStrategy>];
        let single = explore(&model, &space, &mut grid_only(), &ExploreOptions::default());
        let mut merged = ParetoFrontier::new();
        let mut covered = 0;
        for i in 0..4 {
            let run = explore_shard(
                &model,
                &space.shard(i, 4),
                &mut grid_only(),
                &ExploreOptions::default(),
            );
            covered += run.reports[0].evaluated;
            merged.merge(&run.frontier);
        }
        assert_eq!(covered, space.size(), "4 shards cover the space exactly");
        assert!(merged.dominance_equal(&single.frontier));
        assert_eq!(merged.genome_keys(), single.frontier.genome_keys());
        assert_eq!(
            merged.best_by_edp().unwrap().genome,
            single.best_by_edp().unwrap().genome
        );
    }

    #[test]
    fn explore_sharded_merges_frontiers_and_caches() {
        let model = zoo::lenet();
        let space = DesignSpace::tiny();
        let opts = ExploreOptions {
            budget_per_strategy: 12,
            ..Default::default()
        };
        let sharded = explore_sharded(&model, &space, 3, 7, &opts);
        assert_eq!(sharded.shards.len(), 3);
        assert!(sharded.frontier.is_mutually_non_dominated());
        // The merged cache is the union of the shard caches, so it can
        // only shrink relative to the summed misses (duplicate work).
        assert!(sharded.cache.len() as u64 <= sharded.cache_misses);
        for run in &sharded.shards {
            assert_eq!(run.shard_count, 3);
            // Every shard frontier point survives into the union or is
            // dominated by a point that did.
            for p in run.frontier.points() {
                assert!(
                    sharded
                        .frontier
                        .points()
                        .iter()
                        .any(|q| q.objectives == p.objectives
                            || q.objectives.dominates(&p.objectives))
                );
            }
        }
        // Deterministic end to end: a second run reproduces the frontier.
        let again = explore_sharded(&model, &space, 3, 7, &opts);
        assert_eq!(again.frontier.genome_keys(), sharded.frontier.genome_keys());
        assert_eq!(again.cache.entries(), sharded.cache.entries());
    }

    #[test]
    fn frontier_holds_genuine_tradeoffs() {
        // With area in the objective vector, the small and large arrays
        // cannot dominate each other on a compute-heavy model: the frontier
        // must keep more than one point.
        let model = zoo::resnet50();
        let mut strategies: Vec<Box<dyn SearchStrategy>> = vec![Box::new(GridSearch)];
        let result = explore(
            &model,
            &DesignSpace::tiny(),
            &mut strategies,
            &ExploreOptions::default(),
        );
        assert!(
            result.frontier.len() > 1,
            "expected latency/area trade-offs"
        );
    }
}
