//! Property-based tests of the search strategies: on any sub-space,
//! exhaustive grid search is at least as good (by EDP) as any budget of
//! random sampling, because the grid visits every point random sampling
//! can draw.

use lego_explorer::{
    DesignSpace, Evaluator, GridSearch, ParetoFrontier, RandomSearch, SearchStrategy,
};
use lego_model::TechModel;
use lego_workloads::zoo;
use proptest::prelude::*;

/// A random non-trivial sub-space of the paper space: each axis keeps a
/// prefix of its choices.
fn subspace(r: usize, c: usize, cl: usize, b: usize, w: usize, d: usize, t: usize) -> DesignSpace {
    let full = DesignSpace::paper();
    DesignSpace {
        rows: full.rows[..r].to_vec(),
        cols: full.cols[..c].to_vec(),
        clusters: full.clusters[..cl].to_vec(),
        buffer_kb: full.buffer_kb[..b].to_vec(),
        dram_gbps: full.dram_gbps[..w].to_vec(),
        dataflow_sets: full.dataflow_sets[..d].to_vec(),
        tile_caps: full.tile_caps[..t].to_vec(),
        sparse_accels: full.sparse_accels.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn exhaustive_never_loses_to_random_sampling(
        r in 1usize..=2,
        c in 1usize..=2,
        cl in 1usize..=2,
        b in 1usize..=2,
        w in 1usize..=2,
        d in 1usize..=2,
        t in 1usize..=2,
        seed in 0u64..1_000_000,
        budget in 1usize..48,
    ) {
        let space = subspace(r, c, cl, b, w, d, t);
        let model = zoo::lenet();
        let evaluator = Evaluator::new(&model, TechModel::default());

        let mut grid_frontier = ParetoFrontier::new();
        let grid = GridSearch.run(&space.full(), &evaluator, &mut grid_frontier, space.size());
        let grid_best = grid.best.expect("grid evaluated the whole space");

        let mut rand_frontier = ParetoFrontier::new();
        let random =
            RandomSearch { seed }.run(&space.full(), &evaluator, &mut rand_frontier, budget);
        let rand_best = random.best.expect("random evaluated at least one point");

        prop_assert!(
            grid_best.objectives.edp() <= rand_best.objectives.edp() * (1.0 + 1e-12),
            "grid EDP {} must be <= random EDP {} (seed {}, budget {})",
            grid_best.objectives.edp(),
            rand_best.objectives.edp(),
            seed,
            budget
        );
        // Both strategies hit the same shared cache, so the random pass
        // after the grid pass must be answered entirely from memory.
        prop_assert!(evaluator.cache().hits() > 0);
    }
}
