//! Property-based tests of the shard-merge algebra: frontier `merge` is
//! commutative, associative, and idempotent; cache `absorb` is a set
//! union that never rewrites a resident entry; and the snapshot codec
//! round-trips whatever those operations produce.
//!
//! These are the laws that make distributed search trustworthy: a
//! coordinator may receive shard snapshots in any order, retry a merge
//! after a crash, or absorb the same snapshot twice, and the result must
//! not depend on any of it.

use lego_explorer::{
    DesignPoint, EvalCache, Genome, Objectives, ParetoFrontier, Snapshot, SplitMix64,
};
use lego_sim::{EnergyBreakdown, LayerPerf, ModelPerf, SpatialMapping};
use proptest::collection::vec;
use proptest::prelude::*;

/// A synthetic design point on a small integer objective lattice. The
/// genome is derived injectively from the objectives, so equal values
/// mean the *same* design (set semantics), and small values force heavy
/// domination/tie traffic — the regime where ordering bugs would show.
fn point(lat: u8, en: u8, area: u8) -> DesignPoint {
    let mut genome = Genome::lego_256_baseline();
    genome.rows = i64::from(lat) * 10_000 + i64::from(en) * 100 + i64::from(area) + 1;
    DesignPoint {
        genome,
        feasible: true,
        peak_power_mw: f64::from(en) * 10.0,
        objectives: Objectives {
            latency_cycles: f64::from(lat),
            energy_pj: f64::from(en),
            area_um2: f64::from(area),
        },
        perf: ModelPerf {
            cycles: i64::from(lat),
            ops: 2,
            gops: 1.0,
            watts: 0.5,
            gops_per_watt: 2.0,
            utilization: 0.5,
            ppu_fraction: 0.1,
            instr_gbps: 0.01,
        },
    }
}

fn frontier_of(stream: &[(u8, u8, u8)]) -> ParetoFrontier {
    let mut f = ParetoFrontier::new();
    for &(l, e, a) in stream {
        f.insert(point(l, e, a));
    }
    f
}

fn merged(a: &ParetoFrontier, b: &ParetoFrontier) -> ParetoFrontier {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// A synthetic cache entry; the value is derived from the key plus `salt`
/// so colliding keys can carry conflicting values on demand.
fn entry(hw: u8, layer: u8, salt: i64) -> ((u64, u64), LayerPerf) {
    (
        (u64::from(hw), u64::from(layer)),
        LayerPerf {
            cycles: i64::from(hw) * 1000 + i64::from(layer) + salt,
            utilization: 0.5,
            macs: 64,
            dram_bytes: 128,
            l1_accesses: 256,
            ppu_cycles: 4,
            noc_cycles: 0,
            energy: EnergyBreakdown::default(),
            mapping: SpatialMapping::GemmMN,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        xs in vec((1u8..6, 1u8..6, 1u8..6), 0..30),
        ys in vec((1u8..6, 1u8..6, 1u8..6), 0..30),
    ) {
        let (a, b) = (frontier_of(&xs), frontier_of(&ys));
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert!(ab.dominance_equal(&ba));
        prop_assert_eq!(ab.genome_keys(), ba.genome_keys());
        prop_assert!(ab.is_mutually_non_dominated());
    }

    #[test]
    fn merge_is_associative(
        xs in vec((1u8..6, 1u8..6, 1u8..6), 0..20),
        ys in vec((1u8..6, 1u8..6, 1u8..6), 0..20),
        zs in vec((1u8..6, 1u8..6, 1u8..6), 0..20),
    ) {
        let (a, b, c) = (frontier_of(&xs), frontier_of(&ys), frontier_of(&zs));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert!(left.dominance_equal(&right));
        prop_assert_eq!(left.genome_keys(), right.genome_keys());
    }

    #[test]
    fn merge_is_idempotent(
        xs in vec((1u8..6, 1u8..6, 1u8..6), 0..30),
    ) {
        let a = frontier_of(&xs);
        let mut twice = a.clone();
        prop_assert_eq!(twice.merge(&a), 0, "self-merge must add nothing");
        prop_assert_eq!(twice.genome_keys(), a.genome_keys());
        // And merging equals inserting the concatenated stream.
        let mut doubled = xs.clone();
        doubled.extend_from_slice(&xs);
        prop_assert!(twice.dominance_equal(&frontier_of(&doubled)));
    }

    #[test]
    fn merge_equals_single_process_insertion(
        xs in vec((1u8..6, 1u8..6, 1u8..6), 0..40),
        split in 0usize..40,
    ) {
        // Any way of cutting one evaluation stream into two "shards"
        // merges back to the frontier of the whole stream.
        let cut = split.min(xs.len());
        let whole = frontier_of(&xs);
        let shards = merged(&frontier_of(&xs[..cut]), &frontier_of(&xs[cut..]));
        prop_assert!(shards.dominance_equal(&whole));
        prop_assert_eq!(shards.genome_keys(), whole.genome_keys());
    }

    #[test]
    fn absorb_never_changes_a_resident_entry(
        keys in vec((0u8..8, 0u8..8), 1..24),
        foreign in vec((0u8..8, 0u8..8), 0..24),
    ) {
        let cache = EvalCache::new();
        // Residents carry salt 0; absorbed entries carry a conflicting
        // salt, so any overwrite would be visible.
        prop_assume!(!keys.is_empty());
        cache.absorb(keys.iter().map(|&(h, l)| entry(h, l, 0)));
        let len_before = cache.len();
        let added = cache.absorb(foreign.iter().map(|&(h, l)| entry(h, l, 7777)));
        prop_assert_eq!(cache.len(), len_before + added);
        for &(h, l) in &keys {
            let resident = cache
                .peek(u64::from(h), u64::from(l))
                .expect("resident stays");
            prop_assert_eq!(resident, entry(h, l, 0).1, "absorb rewrote ({h},{l})");
        }
        // Absorbing the cache into itself is a no-op.
        prop_assert_eq!(cache.absorb(cache.entries()), 0);
    }

    #[test]
    fn snapshot_roundtrips_any_merge_result(
        xs in vec((1u8..6, 1u8..6, 1u8..6), 0..20),
        ys in vec((1u8..6, 1u8..6, 1u8..6), 0..20),
        keys in vec((0u8..8, 0u8..8), 0..16),
        seed in 0u64..u64::MAX,
    ) {
        let cache = EvalCache::new();
        cache.absorb(keys.iter().map(|&(h, l)| entry(h, l, 3)));
        let snap = Snapshot {
            shard_index: 0,
            shard_count: 1,
            seed,
            model: "synthetic".into(),
            evaluated: (xs.len() + ys.len()) as u64,
            frontier: merged(&frontier_of(&xs), &frontier_of(&ys)),
            cache: cache.entries(),
        };
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded.encode(), bytes);
        prop_assert_eq!(decoded.frontier.genome_keys(), snap.frontier.genome_keys());
        prop_assert_eq!(decoded.cache, snap.cache);
        prop_assert_eq!(decoded.seed, seed);
        prop_assert_eq!(decoded.evaluated, snap.evaluated);
    }
}

/// Deterministic cross-check outside the proptest macro: a long random
/// stream split across 7 shards in round-robin order merges to the same
/// frontier as single-process insertion (the in-the-large version of the
/// laws above).
#[test]
fn round_robin_sharding_matches_single_process() {
    let mut rng = SplitMix64::new(2026);
    let stream: Vec<(u8, u8, u8)> = (0..500)
        .map(|_| {
            (
                (1 + rng.below(9)) as u8,
                (1 + rng.below(9)) as u8,
                (1 + rng.below(9)) as u8,
            )
        })
        .collect();
    let whole = frontier_of(&stream);
    let mut union = ParetoFrontier::new();
    for i in 0..7 {
        let slice: Vec<(u8, u8, u8)> = stream.iter().copied().skip(i).step_by(7).collect();
        union.merge(&frontier_of(&slice));
    }
    assert!(union.dominance_equal(&whole));
    assert_eq!(union.genome_keys(), whole.genome_keys());
}
