//! Property-based tests of the session's context-reuse fast path: recycling
//! a cold [`CostContext`] slot via [`CostContext::update`] must be
//! indistinguishable — field for field, and evaluation for evaluation —
//! from tearing the context down and rebuilding it with
//! [`CostContext::new`]. If `update` ever skips a component that the new
//! hardware actually changed, these properties catch it on arbitrary
//! genome pairs, not just the configurations the unit tests happen to pick.

use lego_explorer::{DesignSpace, Evaluator, Genome, SplitMix64};
use lego_model::{CostContext, SparseHw, SramModel, TechModel};
use proptest::prelude::*;

fn arbitrary_genome(seed: u64) -> Genome {
    let mut rng = SplitMix64::new(seed);
    DesignSpace::paper().sample(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // `CostContext::update` from any genome's hardware to any other's is
    // exactly `CostContext::new` of the destination.
    #[test]
    fn ctx_update_equals_fresh_rebuild(from_seed in 0u64..1_000_000, to_seed in 0u64..1_000_000) {
        let tech = TechModel::default();
        let sram = SramModel::default();
        let from = arbitrary_genome(from_seed);
        let to = arbitrary_genome(to_seed);

        let mut recycled = CostContext::new(from.to_hw_config(), tech)
            .with_sram(sram)
            .with_sparse(SparseHw::with_accel(from.sparse));
        let to_hw = to.to_hw_config();
        let to_sparse = SparseHw::with_accel(to.sparse);
        recycled.update(&to_hw, tech, sram, to_sparse);

        let fresh = CostContext::new(to_hw, tech)
            .with_sram(sram)
            .with_sparse(to_sparse);
        prop_assert_eq!(recycled, fresh);
    }

    // Driving one evaluator across enough distinct genomes to overflow the
    // session's context slots (so cold slots get recycled in place) prices
    // every genome identically to an evaluator that never reuses anything.
    #[test]
    fn recycled_contexts_price_like_fresh_sessions(seed in 0u64..1_000_000) {
        let model = lego_workloads::zoo::lenet();
        let space = DesignSpace::paper();
        let mut rng = SplitMix64::new(seed);
        // More genomes than CTX_SLOTS, so later evaluations hit the
        // recycle-or-rebuild branch.
        let genomes: Vec<Genome> = (0..12).map(|_| space.sample(&mut rng)).collect();

        let reusing = Evaluator::new(&model, TechModel::default());
        for g in &genomes {
            let warm = reusing.eval(g);
            let cold = Evaluator::new(&model, TechModel::default()).eval(g);
            prop_assert_eq!(warm.perf, cold.perf);
            prop_assert_eq!(warm.objectives, cold.objectives);
            prop_assert_eq!(warm.peak_power_mw.to_bits(), cold.peak_power_mw.to_bits());
        }
    }
}
