//! RTL emission and cycle-accurate verification for generated designs.
//!
//! The paper emits synthesizable Verilog through SpinalHDL and verifies its
//! performance model against RTL simulation (§VI-A). This crate plays both
//! roles without external tooling:
//!
//! * [`verilog`] — a structural Verilog-2001 emitter over the backend DAG;
//! * [`sim`] — an *edge-accurate* simulator over the ADG: tensor values
//!   travel only through the planned interconnections (read ports, wires,
//!   delay FIFOs with their per-dataflow programmed depths, and the systolic
//!   timestamp biases), each datum tagged with its tensor index so a wrong
//!   topology or depth is caught as a delivery failure, not a silent
//!   coincidence. The computed output is compared against the workload's
//!   reference loop nest in the integration tests.

pub mod sim;
pub mod verilog;

pub use sim::{simulate, SimOutput, SimStats};
pub use verilog::emit_verilog;
