//! Edge-accurate functional simulation of an ADG.
//!
//! Every input operand an FU consumes must arrive through the architecture:
//! from the FU's own read port (a data node), from a zero-depth wire, or
//! from a delay FIFO whose programmed depth and systolic bias place the
//! value at exactly the right absolute cycle. Data is carried as
//! `(tensor index, value)` pairs, so a mis-planned connection cannot pass
//! by accidental value equality.
//!
//! Tile-boundary cycles whose operands were never seen by any upstream FU
//! fall back to a direct L1 fetch (real LEGO handles these with validity
//! windows on the distribution switches); the simulator counts them so
//! tests can assert that steady-state reuse dominates.

use std::collections::VecDeque;

use lego_frontend::Adg;
use lego_ir::tensor::TensorData;
use lego_linalg::delinearize;

/// Counters describing how operands were delivered during simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Absolute cycles simulated (including systolic skew).
    pub cycles: i64,
    /// Operand deliveries through planned data-node ports.
    pub port_reads: u64,
    /// Operand deliveries through FU-to-FU interconnections.
    pub edge_deliveries: u64,
    /// Boundary fetches not covered by the reuse network.
    pub fallback_reads: u64,
    /// Loop-body evaluations executed.
    pub fu_ops: u64,
}

/// Simulation result: the output tensor plus delivery statistics.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Computed output tensor.
    pub output: TensorData,
    /// Delivery statistics.
    pub stats: SimStats,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Datum {
    /// Flat offset of the tensor element (the tag).
    tag: usize,
    value: i64,
}

/// Simulates the ADG running dataflow `df` on the given inputs and returns
/// the output tensor computed purely from network-delivered operands.
///
/// # Panics
///
/// Panics if `df` is out of range or the inputs mismatch the workload.
pub fn simulate(adg: &Adg, df: usize, inputs: &[&TensorData]) -> SimOutput {
    let dataflow = &adg.dataflows[df];
    let workload = &adg.workload;
    let input_accesses: Vec<_> = workload.inputs().collect();
    assert_eq!(inputs.len(), input_accesses.len(), "input count mismatch");

    let n_fus = adg.num_fus;
    let coords = dataflow.fu_coords();
    let bias: Vec<i64> = coords.iter().map(|s| dataflow.t_bias(s)).collect();
    let max_bias = bias.iter().copied().max().unwrap_or(0);
    let total = dataflow.total_steps();
    let mut stats = SimStats::default();

    // Per input tensor: composed map, per-FU current datum, per-edge FIFO.
    struct TensorNet<'a> {
        data: &'a TensorData,
        f: lego_linalg::AffineMap,
        value_at: Vec<Option<Datum>>,
        // (edge index in adg.edges, fifo of depth d) — depth-0 edges are
        // resolved inline through `order`.
        fifos: Vec<(usize, i64, VecDeque<Option<Datum>>)>,
        wires: Vec<usize>,
        order: Vec<usize>, // FU resolution order honoring depth-0 wires
        is_port: Vec<bool>,
    }

    let mut nets: Vec<TensorNet> = Vec::new();
    for (access, data) in input_accesses.iter().zip(inputs) {
        let plan = adg.tensor_plan(&access.tensor).expect("tensor plan exists");
        let mut is_port = vec![false; n_fus];
        for dn in plan.data_nodes_in(df) {
            is_port[dn.fu] = true;
        }
        let mut fifos = Vec::new();
        let mut wires = Vec::new();
        let mut wire_adj: Vec<Vec<usize>> = vec![Vec::new(); n_fus];
        let mut indeg = vec![0usize; n_fus];
        for (i, e) in adg.edges.iter().enumerate() {
            if e.tensor != access.tensor || !e.active_in(df) {
                continue;
            }
            let depth = e.depth_per_df[df].expect("active edge has depth");
            if depth > 0 {
                fifos.push((i, depth, VecDeque::from(vec![None; depth as usize])));
            } else {
                wires.push(i);
                wire_adj[e.from].push(e.to);
                indeg[e.to] += 1;
            }
        }
        // Topological order over depth-0 wires (delivery trees ⇒ acyclic).
        let mut queue: VecDeque<usize> = (0..n_fus).filter(|&f| indeg[f] == 0).collect();
        let mut order = Vec::with_capacity(n_fus);
        while let Some(f) = queue.pop_front() {
            order.push(f);
            for &t in &wire_adj[f] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        assert_eq!(order.len(), n_fus, "cyclic zero-depth delivery");
        nets.push(TensorNet {
            data,
            f: dataflow.composed_map(access),
            value_at: vec![None; n_fus],
            fifos,
            wires,
            order,
            is_port,
        });
    }

    let out_access = workload.output();
    let mut output = TensorData::zeros(&workload.tensor_shape(&out_access.tensor));
    let f_out = dataflow.composed_map(out_access);

    let horizon = total + max_bias;
    stats.cycles = horizon;
    let mut operand_buf = vec![0i64; inputs.len()];

    for tau in 0..horizon {
        // 1. Resolve each tensor's network for this cycle.
        for net in nets.iter_mut() {
            // Values arriving from FIFOs this cycle, keyed by receiving FU.
            let mut arriving: Vec<Vec<Datum>> = vec![Vec::new(); n_fus];
            for (ei, _, q) in net.fifos.iter_mut() {
                if let Some(Some(d)) = q.pop_front() {
                    arriving[adg.edges[*ei].to].push(d);
                }
            }
            let order = net.order.clone();
            for &fu in &order {
                let t_local = tau - bias[fu];
                if t_local < 0 || t_local >= total {
                    net.value_at[fu] = None;
                    continue;
                }
                let t_vec = delinearize(t_local, &dataflow.temporal_sizes);
                let ts: Vec<i64> = t_vec.iter().chain(&coords[fu]).copied().collect();
                let idx = net.f.apply(&ts);
                let tag = net.data.offset(&idx);

                // Delivery priority: interconnections, then the planned
                // port, then a boundary fallback.
                let mut found = arriving[fu].iter().find(|d| d.tag == tag).copied();
                if found.is_none() {
                    for &wi in &net.wires {
                        let e = &adg.edges[wi];
                        if e.to == fu {
                            if let Some(d) = net.value_at[e.from] {
                                if d.tag == tag {
                                    found = Some(d);
                                    break;
                                }
                            }
                        }
                    }
                }
                let datum = if let Some(d) = found {
                    stats.edge_deliveries += 1;
                    d
                } else {
                    if net.is_port[fu] {
                        stats.port_reads += 1;
                    } else {
                        stats.fallback_reads += 1;
                    }
                    Datum {
                        tag,
                        value: net.data.as_slice()[tag],
                    }
                };
                net.value_at[fu] = Some(datum);
            }
            // Push this cycle's values into the FIFOs.
            for (ei, _, q) in net.fifos.iter_mut() {
                q.push_back(net.value_at[adg.edges[*ei].from]);
            }
        }

        // 2. Compute: every valid FU evaluates the loop body once.
        for fu in 0..n_fus {
            let t_local = tau - bias[fu];
            if t_local < 0 || t_local >= total {
                continue;
            }
            let mut ok = true;
            for (slot, net) in operand_buf.iter_mut().zip(&nets) {
                match net.value_at[fu] {
                    Some(d) => *slot = d.value,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            assert!(ok, "valid FU {fu} missing an operand at cycle {tau}");
            let t_vec = delinearize(t_local, &dataflow.temporal_sizes);
            let ts: Vec<i64> = t_vec.iter().chain(&coords[fu]).copied().collect();
            let y_idx = f_out.apply(&ts);
            let acc = output.get(&y_idx);
            output.set(&y_idx, workload.op.apply(acc, &operand_buf));
            stats.fu_ops += 1;
        }
    }

    SimOutput { output, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_frontend::{build_adg, FrontendConfig};
    use lego_ir::kernels::{self, dataflows};
    use lego_ir::tensor::reference_execute;

    fn run_and_check(
        workload: &lego_ir::Workload,
        dfs: &[lego_ir::Dataflow],
        df: usize,
    ) -> SimStats {
        let adg = build_adg(workload, dfs, &FrontendConfig::default()).unwrap();
        let inputs: Vec<TensorData> = workload
            .inputs()
            .enumerate()
            .map(|(i, a)| {
                let shape = workload.tensor_shape(&a.tensor);
                TensorData::from_fn(&shape, |k| ((k * 31 + i * 17 + 7) % 23) as i64 - 11)
            })
            .collect();
        let refs: Vec<&TensorData> = inputs.iter().collect();
        let expect = reference_execute(workload, &refs);
        let out = simulate(&adg, df, &refs);
        assert_eq!(out.output, expect, "simulation diverged from reference");
        assert_eq!(out.stats.fu_ops as i64, workload.domain_size());
        out.stats
    }

    #[test]
    fn systolic_gemm_matches_reference() {
        let gemm = kernels::gemm(8, 4, 4);
        let stats = run_and_check(&gemm, &[dataflows::gemm_kj(&gemm, 2)], 0);
        // X forwarding delivers data across FUs.
        assert!(stats.edge_deliveries > 0);
    }

    #[test]
    fn broadcast_gemm_matches_reference() {
        let gemm = kernels::gemm(4, 4, 4);
        let stats = run_and_check(&gemm, &[dataflows::gemm_ij(&gemm, 2)], 0);
        // Broadcast: 3 of 4 FUs get X and W over wires every cycle.
        assert!(stats.edge_deliveries >= stats.port_reads);
    }

    #[test]
    fn conv_ohow_matches_reference() {
        let conv = kernels::conv2d(1, 2, 2, 4, 4, 3, 3, 1);
        let stats = run_and_check(&conv, &[dataflows::conv_ohow(&conv, 2)], 0);
        // Steady-state reuse must dominate boundary fallbacks.
        assert!(stats.edge_deliveries > stats.fallback_reads, "{stats:?}");
    }

    #[test]
    fn conv_icoc_matches_reference() {
        let conv = kernels::conv2d(1, 4, 4, 3, 3, 3, 3, 1);
        run_and_check(&conv, &[dataflows::conv_icoc(&conv, 2)], 0);
    }

    #[test]
    fn mttkrp_matches_reference() {
        let m = kernels::mttkrp(4, 4, 2, 2);
        run_and_check(&m, &[dataflows::mttkrp_ij(&m, 2)], 0);
    }

    #[test]
    fn fused_design_runs_both_dataflows() {
        let gemm = kernels::gemm(8, 8, 8);
        let dfs = vec![dataflows::gemm_ij(&gemm, 2), dataflows::gemm_kj(&gemm, 2)];
        run_and_check(&gemm, &dfs, 0);
        run_and_check(&gemm, &dfs, 1);
    }

    #[test]
    fn depthwise_conv_matches_reference() {
        let dw = kernels::depthwise_conv2d(1, 4, 4, 4, 3, 3, 1);
        let df = lego_ir::DataflowBuilder::new(&dw)
            .par("oh", 2)
            .par("ow", 2)
            .build("DW-OHOW")
            .unwrap();
        run_and_check(&dw, &[df], 0);
    }

    #[test]
    fn strided_conv_matches_reference() {
        let conv = kernels::conv2d(1, 2, 2, 3, 3, 3, 3, 2);
        run_and_check(&conv, &[dataflows::conv_ohow(&conv, 3)], 0);
    }
}
