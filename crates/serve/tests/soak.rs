//! The soak: many concurrent clients, both transports, a byte-budgeted
//! cache under eviction pressure, and byte-identity on every reply.
//!
//! By default 1024 requests fan out from 16 threads, half over TCP and
//! half over a Unix socket, cycling the full dense/sparse/clustered mix.
//! `LEGO_SOAK_REQUESTS` scales the total (CI smoke uses a reduced run).
//!
//! What must hold:
//!
//! * every request eventually succeeds — `QUEUE_FULL` is retried, no
//!   connection is ever dropped;
//! * every reply body is byte-identical to a fresh offline
//!   `EvalSession` evaluation of the same request;
//! * the budgeted cache stays within its byte budget the whole time and
//!   actually evicts (the working set is sized to exceed the budget).

use lego_eval::{estimated_resident_bytes_for, EvalError, EvalSession, StatusCode};
use lego_serve::mix::roster;
use lego_serve::{Client, Server, ServerConfig};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn soak_total() -> usize {
    std::env::var("LEGO_SOAK_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

fn evaluate_with_retry<S: Read + Write>(
    client: &mut Client<S>,
    request: &lego_eval::EvalRequest,
    rejections: &AtomicU64,
) -> Result<Vec<u8>, EvalError> {
    loop {
        match client.evaluate_bytes(request) {
            Err(EvalError::Remote { code, .. }) if code == StatusCode::QUEUE_FULL => {
                rejections.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
            other => return other,
        }
    }
}

#[test]
fn soak_mixed_load_over_tcp_and_unix() {
    let plan = roster("all").unwrap();

    // Size the cache budget *below* the mix's distinct-key working set so
    // eviction pressure is guaranteed, but high enough that the soak stays
    // mostly warm. Each roster entry's distinct keys are its cold-cache
    // misses, and entries are pairwise disjoint (different model,
    // hardware, sparsity, or tiling ⇒ different cache keys).
    let working_set: u64 = plan
        .iter()
        .map(|r| EvalSession::new().evaluate(r).provenance.cache_misses)
        .sum();
    let budget_entries = (working_set as usize * 3 / 4).max(16);
    let budget = estimated_resident_bytes_for(budget_entries);

    let server = Server::new(ServerConfig {
        workers: 4,
        queue_capacity: 64,
        cache_budget: Some(budget),
        ..Default::default()
    });
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let path = std::env::temp_dir().join(format!("lego-serve-soak-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    server.listen_unix(&path).unwrap();

    // The byte-identity oracle: fresh offline sessions, one per roster
    // entry, evaluated before the server sees any load.
    let expected: Arc<Vec<Vec<u8>>> = Arc::new(
        plan.iter()
            .map(|r| EvalSession::new().evaluate(r).encode())
            .collect(),
    );
    let plan = Arc::new(plan);

    let threads = 16;
    let total = soak_total();
    let per_thread = total.div_ceil(threads);
    let rejections = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let plan = Arc::clone(&plan);
            let expected = Arc::clone(&expected);
            let rejections = Arc::clone(&rejections);
            let path = path.clone();
            std::thread::spawn(move || {
                // Even threads speak TCP, odd threads speak Unix; each
                // opens one long-lived connection for its whole share.
                let check = |client: &mut dyn FnMut(
                    &lego_eval::EvalRequest,
                )
                    -> Result<Vec<u8>, EvalError>| {
                    for k in 0..per_thread {
                        let i = (t * per_thread + k) % plan.len();
                        let got = client(&plan[i]).expect("request must eventually succeed");
                        assert_eq!(got, expected[i], "reply {i} diverged from offline bytes");
                    }
                };
                if t % 2 == 0 {
                    let mut c = Client::connect_tcp(addr).unwrap();
                    check(&mut |r| evaluate_with_retry(&mut c, r, &rejections));
                } else {
                    let mut c = Client::connect_unix(&path).unwrap();
                    check(&mut |r| evaluate_with_retry(&mut c, r, &rejections));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("soak worker panicked");
    }

    let gauges = server.gauges();
    server.shutdown();

    assert!(
        gauges.within_budget(),
        "resident {} bytes exceeds budget {budget}",
        gauges.resident_bytes
    );
    assert!(
        gauges.evictions > 0,
        "a working set of {working_set} keys against a {budget_entries}-entry budget must evict"
    );
    assert!(
        gauges.hits > 0,
        "the soak must observably reuse the warm cache"
    );
    println!(
        "soak: {} requests, {} queue-full retries, cache {} entries / {} evictions",
        per_thread * threads,
        rejections.load(Ordering::Relaxed),
        gauges.entries,
        gauges.evictions,
    );
}
