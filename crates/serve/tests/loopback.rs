//! Loopback integration: a real in-process server, real sockets, and the
//! full error/status discipline a client can observe.

use lego_eval::{CodecError, EvalError, EvalRequest, EvalSession, StatusCode};
use lego_serve::frame::{self, KIND_REQUEST};
use lego_serve::{Client, Server, ServerConfig};
use lego_sim::HwConfig;
use lego_workloads::zoo;
use std::io::Write;
use std::net::TcpStream;

fn request() -> EvalRequest {
    EvalRequest::builder(zoo::lenet(), HwConfig::lego_256())
        .build()
        .unwrap()
}

fn unix_path(tag: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("lego-serve-test-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn tcp_and_unix_replies_are_byte_identical_to_offline_evaluation() {
    let server = Server::new(ServerConfig::default());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let path = unix_path("dual");
    server.listen_unix(&path).unwrap();

    let request = request();
    let offline = EvalSession::new().evaluate(&request).encode();

    let mut tcp = Client::connect_tcp(addr).unwrap();
    let mut unix = Client::connect_unix(&path).unwrap();
    // Twice per transport: the second reply runs against a warm server
    // cache and must still be pristine.
    for _ in 0..2 {
        assert_eq!(tcp.evaluate_bytes(&request).unwrap(), offline);
        assert_eq!(unix.evaluate_bytes(&request).unwrap(), offline);
    }
    server.shutdown();
    assert!(!std::fs::exists(&path).unwrap(), "socket file unlinked");
}

#[test]
fn pipelined_replies_come_back_in_submission_order() {
    let server = Server::new(ServerConfig::default());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    let reqs = [
        request(),
        EvalRequest::builder(zoo::lenet(), HwConfig::lego_256())
            .tile_cap(32)
            .build()
            .unwrap(),
        request(),
    ];
    let expected: Vec<Vec<u8>> = reqs
        .iter()
        .map(|r| EvalSession::new().evaluate(r).encode())
        .collect();

    let mut client = Client::connect_tcp(addr).unwrap();
    for r in &reqs {
        client.send(r).unwrap();
    }
    for want in &expected {
        assert_eq!(&client.recv_report_bytes().unwrap(), want);
    }
    server.shutdown();
}

#[test]
fn malformed_payload_is_a_status_frame_and_the_connection_survives() {
    let server = Server::new(ServerConfig::default());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut client = Client::over(stream.try_clone().unwrap());
    // A well-framed frame whose payload is not a codec'd request.
    frame::write_frame(
        &mut stream.try_clone().unwrap(),
        KIND_REQUEST,
        b"this is not an EvalRequest",
    )
    .unwrap();
    match client.recv_report_bytes() {
        Err(EvalError::Remote { code, .. }) => {
            assert_eq!(code, StatusCode::BAD_MAGIC, "payload magic is wrong first")
        }
        other => panic!("{other:?}"),
    }
    // Same connection, valid request: still served.
    let offline = EvalSession::new().evaluate(&request()).encode();
    assert_eq!(client.evaluate_bytes(&request()).unwrap(), offline);
    server.shutdown();
}

#[test]
fn oversized_frames_are_refused_and_the_stream_resynchronizes() {
    let server = Server::new(ServerConfig {
        max_frame_len: 1024,
        ..Default::default()
    });
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut client = Client::over(stream.try_clone().unwrap());
    frame::write_frame(
        &mut stream.try_clone().unwrap(),
        KIND_REQUEST,
        &vec![0u8; 4096],
    )
    .unwrap();
    match client.recv_report_bytes() {
        Err(EvalError::Remote { code, message }) => {
            assert_eq!(code, StatusCode::FRAME_TOO_LARGE);
            assert!(message.contains("4096"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    // lenet requests are tiny; the connection must still work.
    let offline = EvalSession::new().evaluate(&request()).encode();
    assert_eq!(client.evaluate_bytes(&request()).unwrap(), offline);
    server.shutdown();
}

#[test]
fn desynchronized_stream_gets_a_status_then_the_connection_closes() {
    let server = Server::new(ServerConfig::default());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut client = Client::over(stream.try_clone().unwrap());
    stream.write_all(b"garbage that is not a frame..").unwrap();
    stream.flush().unwrap();
    match client.recv_raw() {
        Ok((status, _)) => assert_eq!(status, StatusCode::BAD_MAGIC),
        Err(e) => panic!("expected a status frame before close: {e}"),
    }
    // After the status the server closes; the next read fails at the
    // connection level (EOF, or a reset if unread garbage remained).
    match client.recv_raw() {
        Err(EvalError::Io(_) | EvalError::Codec(CodecError::Io(_))) => {}
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn invalid_requests_come_back_with_their_admission_status() {
    let server = Server::new(ServerConfig::default());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    let mut bad_hw = HwConfig::lego_256();
    bad_hw.dataflows.clear();
    // Bypass the validating builder the way a hostile peer would.
    let invalid = EvalRequest::new(zoo::lenet(), bad_hw);
    let mut client = Client::connect_tcp(addr).unwrap();
    match client.evaluate_bytes(&invalid) {
        Err(EvalError::Remote { code, .. }) => assert_eq!(code, StatusCode::INVALID_HW),
        other => panic!("{other:?}"),
    }
    // The refusal cost nothing: the connection still serves.
    assert!(client.evaluate_bytes(&request()).is_ok());
    server.shutdown();
}

#[test]
fn queue_full_backpressure_reaches_the_wire_as_a_status() {
    // No workers: everything admitted stays queued, so the capacity+1'th
    // pipelined request must be refused on the wire.
    let server = Server::new(ServerConfig {
        workers: 0,
        queue_capacity: 2,
        ..Default::default()
    });
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();

    let mut client = Client::connect_tcp(addr).unwrap();
    for _ in 0..3 {
        client.send(&request()).unwrap();
    }
    // Replies come in submission order: the first two are still pending
    // (no workers), so the rejection is necessarily for the third —
    // observable only after shutdown flushes the pending slots.
    let tail = std::thread::spawn(move || {
        let mut statuses = Vec::new();
        for _ in 0..3 {
            statuses.push(client.recv_raw().unwrap().0);
        }
        statuses
    });
    // Give the reader a moment to admit, then drain: shutting down with
    // zero workers drops the queued jobs, which the connection writer
    // turns into SHUTTING_DOWN statuses rather than silence.
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();
    let statuses = match tail.join() {
        Ok(s) => s,
        Err(e) => std::panic::resume_unwind(e),
    };
    assert_eq!(
        statuses,
        vec![
            StatusCode::SHUTTING_DOWN,
            StatusCode::SHUTTING_DOWN,
            StatusCode::QUEUE_FULL,
        ]
    );
}

#[test]
fn shutdown_frame_is_acknowledged_and_stops_the_server() {
    let server = Server::new(ServerConfig::default());
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    client.shutdown_server().unwrap();
    // wait_for_shutdown_request returns promptly once the frame landed.
    server.wait_for_shutdown_request();
    server.shutdown();
}
