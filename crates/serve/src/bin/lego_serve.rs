//! The lego-serve server binary: keep one warm `EvalSession` alive and
//! price framed `EvalRequest`s from any number of clients.
//!
//! ```text
//! lego_serve [--tcp ADDR] [--unix PATH] [--workers N] [--queue N]
//!            [--cache-budget BYTES] [--max-frame BYTES] [--wallclock]
//! ```
//!
//! With no endpoint flags the server binds `127.0.0.1:0` (a free port).
//! Each bound endpoint prints a flushed `listening tcp ADDR` /
//! `listening unix PATH` line so drivers can scrape the address. The
//! process runs until a client sends a SHUTDOWN frame, then drains the
//! admitted queue, prints the cache gauges and the observability
//! summary, and exits.

use lego_eval::EvalError;
use lego_obs::Obs;
use lego_serve::{Server, ServerConfig, DEFAULT_MAX_FRAME_LEN};
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage:
  lego_serve [--tcp ADDR] [--unix PATH] [--workers N] [--queue N]
             [--cache-budget BYTES] [--max-frame BYTES] [--wallclock]";

fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, EvalError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(EvalError::Usage(format!("{flag} needs a value\n{USAGE}"))),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse<T: std::str::FromStr>(
    what: &str,
    text: Option<String>,
    default: T,
) -> Result<T, EvalError> {
    match text {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| EvalError::Usage(format!("bad {what} {s:?}"))),
    }
}

fn run() -> Result<(), EvalError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let tcp = take_flag(&mut args, "--tcp")?;
    let unix = take_flag(&mut args, "--unix")?;
    let workers = parse("worker count", take_flag(&mut args, "--workers")?, 4)?;
    let queue = parse("queue depth", take_flag(&mut args, "--queue")?, 256)?;
    let cache_budget = take_flag(&mut args, "--cache-budget")?
        .map(|b| {
            b.parse::<usize>()
                .map_err(|_| EvalError::Usage(format!("bad cache budget {b:?}")))
        })
        .transpose()?;
    let max_frame = parse(
        "frame limit",
        take_flag(&mut args, "--max-frame")?,
        DEFAULT_MAX_FRAME_LEN,
    )?;
    let wallclock = take_switch(&mut args, "--wallclock");
    if !args.is_empty() {
        return Err(EvalError::Usage(format!(
            "unexpected arguments {args:?}\n{USAGE}"
        )));
    }

    let obs = if wallclock {
        Obs::wall_clock()
    } else {
        Obs::deterministic()
    };
    let server = Server::new(ServerConfig {
        workers,
        queue_capacity: queue,
        cache_budget,
        max_frame_len: max_frame,
        obs: obs.clone(),
    });

    let default_tcp = tcp.is_none() && unix.is_none();
    if let Some(addr) = tcp.or_else(|| default_tcp.then(|| "127.0.0.1:0".into())) {
        let bound = server.listen_tcp(&addr)?;
        println!("listening tcp {bound}");
    }
    if let Some(path) = unix {
        // A stale socket file from a dead server would fail the bind.
        let _ = std::fs::remove_file(&path);
        server.listen_unix(&path)?;
        println!("listening unix {path}");
    }
    std::io::stdout().flush().map_err(EvalError::Io)?;

    server.wait_for_shutdown_request();
    server.shutdown();

    let gauges = server.gauges();
    println!(
        "cache at exit: {} entries, {} bytes resident{}, {} evictions, hit rate {:.1}%",
        gauges.entries,
        gauges.resident_bytes,
        match gauges.budget_bytes {
            Some(b) => format!(" (budget {b})"),
            None => String::new(),
        },
        gauges.evictions,
        gauges.hit_rate() * 100.0,
    );
    print!("{}", obs.summary().render());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lego_serve: {e} [status {}]", e.status());
            ExitCode::FAILURE
        }
    }
}
