//! Load-generation client for a running lego-serve endpoint.
//!
//! ```text
//! serve_client (--tcp ADDR | --unix PATH) [--requests N] [--connections C]
//!              [--mix dense|sparse|clustered|all] [--verify]
//!              [--replies-out FILE] [--shutdown]
//! ```
//!
//! Sends a deterministic round-robin mix of requests over `C` concurrent
//! connections and collects every reply in request-index order. With
//! `--verify`, each reply body is compared byte-for-byte against an
//! offline `EvalSession::new()` evaluation of the same request. With
//! `--replies-out`, the replies are written as `len u32 LE | body`
//! records in request-index order — two runs against two independent
//! servers must produce `cmp`-identical files, which is exactly what CI
//! checks. `QUEUE_FULL` rejections are retried (they are backpressure,
//! not failures) and counted in the summary.

use lego_eval::{EvalError, EvalRequest, EvalSession, StatusCode};
use lego_serve::mix::request_mix;
use lego_serve::Client;
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const USAGE: &str = "usage:
  serve_client (--tcp ADDR | --unix PATH) [--requests N] [--connections C]
               [--mix dense|sparse|clustered|all] [--verify]
               [--replies-out FILE] [--shutdown]";

fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, EvalError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(EvalError::Usage(format!("{flag} needs a value\n{USAGE}"))),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Where the client connects; each worker thread opens its own stream.
#[derive(Clone)]
enum Target {
    Tcp(String),
    Unix(String),
}

/// One synchronous round trip with retry-on-backpressure, over either
/// transport.
fn roundtrip(
    target: &Target,
    request: &EvalRequest,
    retries: &AtomicU64,
) -> Result<Vec<u8>, EvalError> {
    fn with_retry<S: Read + Write>(
        client: &mut Client<S>,
        request: &EvalRequest,
        retries: &AtomicU64,
    ) -> Result<Vec<u8>, EvalError> {
        loop {
            match client.evaluate_bytes(request) {
                Err(EvalError::Remote { code, .. }) if code == StatusCode::QUEUE_FULL => {
                    retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }
    match target {
        Target::Tcp(addr) => with_retry(&mut Client::connect_tcp(addr)?, request, retries),
        Target::Unix(path) => with_retry(&mut Client::connect_unix(path)?, request, retries),
    }
}

fn run() -> Result<(), EvalError> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let tcp = take_flag(&mut args, "--tcp")?;
    let unix = take_flag(&mut args, "--unix")?;
    let requests: usize = take_flag(&mut args, "--requests")?.map_or(Ok(64), |n| {
        n.parse()
            .map_err(|_| EvalError::Usage(format!("bad request count {n:?}")))
    })?;
    let connections: usize = take_flag(&mut args, "--connections")?.map_or(Ok(4), |n| {
        n.parse()
            .map_err(|_| EvalError::Usage(format!("bad connection count {n:?}")))
    })?;
    let mix = take_flag(&mut args, "--mix")?.unwrap_or("all".into());
    let verify = take_switch(&mut args, "--verify");
    let replies_out = take_flag(&mut args, "--replies-out")?;
    let shutdown = take_switch(&mut args, "--shutdown");
    if !args.is_empty() {
        return Err(EvalError::Usage(format!(
            "unexpected arguments {args:?}\n{USAGE}"
        )));
    }
    let target = match (tcp, unix) {
        (Some(addr), None) => Target::Tcp(addr),
        (None, Some(path)) => Target::Unix(path),
        _ => {
            return Err(EvalError::Usage(format!(
                "exactly one of --tcp / --unix\n{USAGE}"
            )))
        }
    };

    let plan = Arc::new(request_mix(&mix, requests)?);
    let retries = Arc::new(AtomicU64::new(0));
    let connections = connections.clamp(1, requests.max(1));

    // Worker c handles request indices c, c+C, c+2C, ... on its own
    // connection; results land in request-index order.
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let plan = Arc::clone(&plan);
            let target = target.clone();
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || -> Result<Vec<(usize, Vec<u8>)>, EvalError> {
                let mut got = Vec::new();
                for i in (c..plan.len()).step_by(connections.max(1)) {
                    got.push((i, roundtrip(&target, &plan[i], &retries)?));
                }
                Ok(got)
            })
        })
        .collect();
    let mut replies: Vec<Option<Vec<u8>>> = vec![None; plan.len()];
    for w in workers {
        for (i, bytes) in w.join().expect("client worker panicked")? {
            replies[i] = Some(bytes);
        }
    }
    let replies: Vec<Vec<u8>> = replies
        .into_iter()
        .map(|r| r.expect("every index answered"))
        .collect();

    if verify {
        for (i, (request, reply)) in plan.iter().zip(&replies).enumerate() {
            let offline = EvalSession::new().evaluate(request).encode();
            if *reply != offline {
                return Err(EvalError::Internal(format!(
                    "reply {i} differs from the offline evaluation ({} vs {} bytes)",
                    reply.len(),
                    offline.len()
                )));
            }
        }
    }
    if let Some(path) = &replies_out {
        let mut out = Vec::new();
        for reply in &replies {
            out.extend_from_slice(&(reply.len() as u32).to_le_bytes());
            out.extend_from_slice(reply);
        }
        std::fs::write(path, &out)
            .map_err(|e| EvalError::Io(std::io::Error::new(e.kind(), format!("{path}: {e}"))))?;
        println!("replies ({} bytes) -> {path}", out.len());
    }
    if shutdown {
        match &target {
            Target::Tcp(addr) => Client::connect_tcp(addr)?.shutdown_server()?,
            Target::Unix(path) => Client::connect_unix(path)?.shutdown_server()?,
        }
    }

    println!(
        "{} replies over {} connection(s), mix {mix}, {} queue-full retries{}{}",
        replies.len(),
        connections,
        retries.load(Ordering::Relaxed),
        if verify {
            ", verified offline-identical"
        } else {
            ""
        },
        if shutdown { ", server shut down" } else { "" },
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_client: {e} [status {}]", e.status());
            ExitCode::FAILURE
        }
    }
}
