//! The length-prefixed, checksummed frame layer under every lego-serve
//! stream.
//!
//! The `EvalRequest` / `EvalReport` codec in `lego-eval` describes one
//! self-contained payload; a socket carries *many* of them back to back.
//! Frames add the minimum structure a byte stream needs: a magic so a
//! desynchronized peer is detected immediately, a kind byte so control
//! frames can ride the same pipe as requests, a length prefix so the
//! receiver knows where the payload ends, and an FNV-64 checksum so
//! corrupted payloads fail loudly instead of decoding into garbage.
//!
//! ```text
//! "LGFR" | kind u8 | len u32 LE | checksum u64 LE | payload (len bytes)
//! ```
//!
//! Every failure is a plain [`CodecError`] — the same error type the
//! payload codec uses — so one [`lego_eval::EvalError`] covers the whole
//! decode path and maps onto a stable wire status.

use lego_eval::{CodecError, FnvHasher};
use std::hash::Hasher;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame on a lego-serve stream.
pub const MAGIC: [u8; 4] = *b"LGFR";

/// Frame carrying an encoded [`lego_eval::EvalRequest`].
pub const KIND_REQUEST: u8 = 1;
/// Frame carrying a reply payload: `status u16 LE | body`.
pub const KIND_REPLY: u8 = 2;
/// Control frame asking the server to drain and exit (empty payload).
pub const KIND_SHUTDOWN: u8 = 3;

/// Fixed header size: magic + kind + len + checksum.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 8;

/// Default per-frame payload limit (16 MiB) — far above any zoo request,
/// low enough that a corrupted length prefix cannot make the server
/// allocate unbounded memory.
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 << 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind: [`KIND_REQUEST`], [`KIND_REPLY`], or [`KIND_SHUTDOWN`].
    pub kind: u8,
    /// The payload bytes (already checksum-verified).
    pub payload: Vec<u8>,
}

/// FNV-64 checksum of a payload — the same hash the evaluation layer uses
/// for fingerprints, so both ends agree without a new dependency.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::new();
    h.write(bytes);
    h.finish()
}

/// Encodes one frame to bytes.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn valid_kind(kind: u8) -> Result<u8, CodecError> {
    match kind {
        KIND_REQUEST | KIND_REPLY | KIND_SHUTDOWN => Ok(kind),
        tag => Err(CodecError::InvalidTag {
            what: "frame kind",
            tag,
        }),
    }
}

/// Decodes one frame from the front of `bytes`, returning the frame and
/// how many bytes it consumed. Trailing bytes are the next frame's
/// business and are not an error.
pub fn decode_frame(bytes: &[u8], max_len: usize) -> Result<(Frame, usize), CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            at: bytes.len(),
            needed: HEADER_LEN - bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let kind = valid_kind(bytes[4])?;
    let len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    if len > max_len {
        return Err(CodecError::FrameTooLarge { len, max: max_len });
    }
    let expect = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
    let total = HEADER_LEN + len;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            at: bytes.len(),
            needed: total - bytes.len(),
        });
    }
    let payload = bytes[HEADER_LEN..total].to_vec();
    if checksum(&payload) != expect {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((Frame { kind, payload }, total))
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), CodecError> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Fills `buf` from `r`, distinguishing clean EOF at the first byte
/// (`Ok(false)`) from EOF mid-buffer (`Truncated`).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, CodecError> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) if at == 0 => return Ok(false),
            Ok(0) => {
                return Err(CodecError::Truncated {
                    at,
                    needed: buf.len() - at,
                })
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CodecError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame from a stream. `Ok(None)` is a clean end of stream
/// (the peer closed between frames); EOF inside a frame is `Truncated`.
///
/// On [`CodecError::FrameTooLarge`] the header has been consumed but the
/// payload has not — callers that want to keep the connection alive can
/// [`discard`] the announced length and resynchronize on the next frame.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<Frame>, CodecError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    if header[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let kind = valid_kind(header[4])?;
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    if len > max_len {
        return Err(CodecError::FrameTooLarge { len, max: max_len });
    }
    let expect = u64::from_le_bytes(header[9..17].try_into().unwrap());
    // The length was just bounds-checked against the receiver's limit, so
    // this allocation is capped no matter what the wire claims.
    let mut payload = vec![0u8; len];
    if !read_exact_or_eof(r, &mut payload)? {
        return Err(CodecError::Truncated {
            at: HEADER_LEN,
            needed: len,
        });
    }
    if checksum(&payload) != expect {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(Some(Frame { kind, payload }))
}

/// Reads and throws away `len` bytes — how a server skips an oversized
/// payload after refusing it, keeping the stream frame-aligned.
pub fn discard(r: &mut impl Read, len: usize) -> Result<(), CodecError> {
    let copied = io::copy(&mut r.take(len as u64), &mut io::sink())?;
    if copied as usize != len {
        return Err(CodecError::Truncated {
            at: copied as usize,
            needed: len - copied as usize,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_for_every_kind() {
        for kind in [KIND_REQUEST, KIND_REPLY, KIND_SHUTDOWN] {
            let payload = vec![kind; 37];
            let bytes = encode_frame(kind, &payload);
            let (frame, used) = decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(frame, Frame { kind, payload });
        }
    }

    #[test]
    fn empty_payloads_are_legal() {
        let bytes = encode_frame(KIND_SHUTDOWN, &[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        let (frame, _) = decode_frame(&bytes, 0).unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn every_truncated_prefix_fails_cleanly() {
        // The never-trust-wire-lengths property, frame edition: every
        // strict prefix must error (never panic, never succeed), and the
        // error must say how many more bytes would be needed.
        let bytes = encode_frame(KIND_REQUEST, b"all the paper's tables");
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_LEN) {
                Err(CodecError::Truncated { at, needed }) => {
                    assert!(at + needed <= bytes.len(), "cut {cut}");
                    assert!(needed > 0, "cut {cut}");
                }
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let bytes = encode_frame(KIND_REQUEST, b"checksummed");
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                let err = decode_frame(&bad, DEFAULT_MAX_FRAME_LEN)
                    .expect_err(&format!("flipping byte {i} by {flip:#04x} must not decode"));
                match (i, err) {
                    (0..=3, CodecError::BadMagic) => {}
                    (4, CodecError::InvalidTag { what, .. }) => assert_eq!(what, "frame kind"),
                    // A corrupted length either overflows the limit or
                    // leaves the buffer short / checksum-misaligned.
                    (
                        5..=8,
                        CodecError::FrameTooLarge { .. }
                        | CodecError::Truncated { .. }
                        | CodecError::ChecksumMismatch,
                    ) => {}
                    (_, CodecError::ChecksumMismatch) => {}
                    (i, err) => panic!("byte {i} flipped by {flip:#04x}: unexpected {err:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let bytes = encode_frame(KIND_REQUEST, &[0u8; 64]);
        match decode_frame(&bytes, 63) {
            Err(CodecError::FrameTooLarge { len: 64, max: 63 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_reads_match_slice_decodes_and_resume_after_discard() {
        let a = encode_frame(KIND_REQUEST, b"first");
        let big = encode_frame(KIND_REQUEST, &[7u8; 128]);
        let b = encode_frame(KIND_REPLY, b"second");
        let mut stream: Vec<u8> = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&big);
        stream.extend_from_slice(&b);

        let mut r = io::Cursor::new(stream);
        let first = read_frame(&mut r, 64).unwrap().unwrap();
        assert_eq!(first.payload, b"first");
        match read_frame(&mut r, 64) {
            Err(CodecError::FrameTooLarge { len, max: 64 }) => discard(&mut r, len).unwrap(),
            other => panic!("{other:?}"),
        }
        let second = read_frame(&mut r, 64).unwrap().unwrap();
        assert_eq!(second.payload, b"second");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_inside_a_frame_is_truncated_not_clean() {
        let bytes = encode_frame(KIND_REQUEST, b"cut short");
        let mut r = io::Cursor::new(&bytes[..bytes.len() - 3]);
        match read_frame(&mut r, DEFAULT_MAX_FRAME_LEN) {
            Err(CodecError::Truncated { .. }) => {}
            other => panic!("{other:?}"),
        }
    }
}
