//! Deterministic request rosters for load generation.
//!
//! The `serve_client` binary and the soak test need the *same* request
//! stream on every run — CI compares reply files across two independent
//! server processes with `cmp`, so nothing here may be random. A roster
//! is a short list of named (model, hardware, sparsity, tiling)
//! combinations; a mix of `n` requests cycles through it round-robin.

use lego_eval::{EvalError, EvalRequest};
use lego_model::{SparseAccel, SparseHw};
use lego_sim::HwConfig;
use lego_workloads::zoo;

/// A 2×2-cluster variant of LEGO-256: same per-cluster array, but the
/// evaluation now pays modeled L2-mesh traffic — the "clustered" leg of
/// the mixed load.
fn lego_256_clustered() -> HwConfig {
    let mut hw = HwConfig::lego_256();
    hw.clusters = (2, 2);
    hw
}

/// The named request roster for `mix`. Every entry differs from every
/// other in model, hardware, sparsity, or tiling, so their cache
/// footprints are disjoint and a byte-budgeted server cache visibly
/// evicts under the full mix.
pub fn roster(mix: &str) -> Result<Vec<EvalRequest>, EvalError> {
    let dense = || -> Result<Vec<EvalRequest>, EvalError> {
        Ok(vec![
            EvalRequest::builder(zoo::lenet(), HwConfig::lego_256()).build()?,
            EvalRequest::builder(zoo::mobilenet_v2(), HwConfig::lego_256()).build()?,
            EvalRequest::builder(zoo::mobilenet_v2(), HwConfig::lego_256())
                .tile_cap(64)
                .build()?,
        ])
    };
    let sparse = || -> Result<Vec<EvalRequest>, EvalError> {
        Ok(vec![
            EvalRequest::builder(zoo::resnet50_2to4(), HwConfig::lego_256())
                .sparse(SparseHw::with_accel(SparseAccel::Skipping))
                .build()?,
            EvalRequest::builder(zoo::lenet(), HwConfig::lego_256())
                .sparse(SparseHw::with_accel(SparseAccel::Gating))
                .build()?,
        ])
    };
    let clustered = || -> Result<Vec<EvalRequest>, EvalError> {
        Ok(vec![
            EvalRequest::builder(zoo::mobilenet_v2(), lego_256_clustered()).build()?,
            EvalRequest::builder(zoo::lenet(), lego_256_clustered()).build()?,
        ])
    };
    match mix {
        "dense" => dense(),
        "sparse" => sparse(),
        "clustered" => clustered(),
        "all" => {
            let mut all = dense()?;
            all.extend(sparse()?);
            all.extend(clustered()?);
            Ok(all)
        }
        other => Err(EvalError::Unknown {
            what: "mix",
            name: other.to_string(),
        }),
    }
}

/// `n` requests cycling through [`roster`] round-robin.
pub fn request_mix(mix: &str, n: usize) -> Result<Vec<EvalRequest>, EvalError> {
    let roster = roster(mix)?;
    Ok((0..n).map(|i| roster[i % roster.len()].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mix_name_builds_valid_requests() {
        for mix in ["dense", "sparse", "clustered", "all"] {
            let requests = roster(mix).unwrap();
            assert!(!requests.is_empty(), "{mix}");
            for r in &requests {
                r.validate().unwrap();
            }
        }
        assert!(roster("nope").is_err());
    }

    #[test]
    fn mixes_are_deterministic_and_fingerprint_disjoint() {
        let a = request_mix("all", 16).unwrap();
        let b = request_mix("all", 16).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.encode(), y.encode());
        }
        let roster = roster("all").unwrap();
        let prints: std::collections::HashSet<u64> =
            roster.iter().map(|r| r.fingerprint()).collect();
        assert_eq!(prints.len(), roster.len(), "roster entries must differ");
    }
}
