//! The blocking client half of the wire protocol.
//!
//! A [`Client`] wraps any `Read + Write` stream (TCP, Unix socket, or an
//! in-memory duplex in tests) and speaks frames: requests out, replies
//! in. Because the server answers in submission order, a client may
//! pipeline with [`send`](Client::send) / [`recv_report_bytes`](Client::recv_report_bytes)
//! pairs, or stay strictly synchronous with [`evaluate`](Client::evaluate).
//!
//! Server-side refusals surface as [`EvalError::Remote`] carrying the
//! stable wire status — a rejected request is an error *value*, and the
//! connection stays usable for the next request.

use crate::frame::{self, DEFAULT_MAX_FRAME_LEN, KIND_REPLY, KIND_REQUEST, KIND_SHUTDOWN};
use crate::wire;
use lego_eval::{CodecError, EvalError, EvalReport, EvalRequest, StatusCode};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A framed connection to a lego-serve endpoint.
pub struct Client<S> {
    stream: S,
    max_frame_len: usize,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(Client::over(TcpStream::connect(addr)?))
    }
}

impl Client<UnixStream> {
    /// Connects over a Unix socket.
    pub fn connect_unix<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Client::over(UnixStream::connect(path)?))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn over(stream: S) -> Self {
        Client {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// Caps reply payload sizes this client will accept.
    #[must_use]
    pub fn with_max_frame_len(mut self, max: usize) -> Self {
        self.max_frame_len = max;
        self
    }

    /// Sends one request frame without waiting for its reply
    /// (pipelining: replies come back in submission order).
    pub fn send(&mut self, request: &EvalRequest) -> Result<(), EvalError> {
        frame::write_frame(&mut self.stream, KIND_REQUEST, &request.encode())?;
        Ok(())
    }

    /// Reads the next reply frame and splits it into status and body.
    pub fn recv_raw(&mut self) -> Result<(StatusCode, Vec<u8>), EvalError> {
        let frame = frame::read_frame(&mut self.stream, self.max_frame_len)?
            .ok_or_else(|| EvalError::Io(io::Error::other("server closed the connection")))?;
        if frame.kind != KIND_REPLY {
            return Err(CodecError::InvalidTag {
                what: "frame kind",
                tag: frame.kind,
            }
            .into());
        }
        let (status, body) = wire::decode_reply(&frame.payload)?;
        Ok((status, body.to_vec()))
    }

    /// Reads the next reply; an OK status yields the raw encoded report
    /// bytes, any other status becomes [`EvalError::Remote`].
    pub fn recv_report_bytes(&mut self) -> Result<Vec<u8>, EvalError> {
        let frame = frame::read_frame(&mut self.stream, self.max_frame_len)?
            .ok_or_else(|| EvalError::Io(io::Error::other("server closed the connection")))?;
        if frame.kind != KIND_REPLY {
            return Err(CodecError::InvalidTag {
                what: "frame kind",
                tag: frame.kind,
            }
            .into());
        }
        wire::report_bytes_from_reply(&frame.payload)
    }

    /// One synchronous round trip, decoded.
    pub fn evaluate(&mut self, request: &EvalRequest) -> Result<EvalReport, EvalError> {
        Ok(EvalReport::decode(&self.evaluate_bytes(request)?)?)
    }

    /// One synchronous round trip, returning the reply's raw report
    /// bytes — what byte-identity checks compare against an offline
    /// `session.evaluate(request).encode()`.
    pub fn evaluate_bytes(&mut self, request: &EvalRequest) -> Result<Vec<u8>, EvalError> {
        self.send(request)?;
        self.recv_report_bytes()
    }

    /// Asks the server to drain and exit; resolves once the server
    /// acknowledges with an OK status.
    pub fn shutdown_server(&mut self) -> Result<(), EvalError> {
        frame::write_frame(&mut self.stream, KIND_SHUTDOWN, &[])?;
        let (status, body) = self.recv_raw()?;
        if status.is_ok() {
            Ok(())
        } else {
            Err(EvalError::from_wire(
                status,
                String::from_utf8_lossy(&body).into_owned(),
            ))
        }
    }
}
