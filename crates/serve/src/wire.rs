//! Reply payload encoding: the status/body contract inside a
//! [`KIND_REPLY`](crate::frame::KIND_REPLY) frame.
//!
//! ```text
//! status u16 LE | body
//! ```
//!
//! Status `0` means the body is an encoded [`EvalReport`], byte-identical
//! to what an offline [`lego_eval::EvalSession`] would produce for the
//! same request. Any other status carries the stable
//! [`StatusCode`] from the unified error API, with a UTF-8 human-readable
//! message as the body — an evaluation failure is a *reply*, never a
//! dropped connection.

use lego_eval::{CodecError, EvalError, EvalReport, StatusCode};

/// Encodes a reply payload: status, then body.
pub fn encode_reply(status: StatusCode, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + body.len());
    out.extend_from_slice(&status.as_u16().to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// An OK reply wrapping an already-encoded report.
pub fn encode_ok_reply(report_bytes: &[u8]) -> Vec<u8> {
    encode_reply(StatusCode::OK, report_bytes)
}

/// A status reply for a failed or refused request. The body is the
/// error's rendered message, so clients can show *why* without a lookup
/// table.
pub fn encode_status_reply(error: &EvalError) -> Vec<u8> {
    encode_reply(error.status(), error.to_string().as_bytes())
}

/// Splits a reply payload into its status and body.
pub fn decode_reply(payload: &[u8]) -> Result<(StatusCode, &[u8]), CodecError> {
    if payload.len() < 2 {
        return Err(CodecError::Truncated {
            at: payload.len(),
            needed: 2 - payload.len(),
        });
    }
    let status = StatusCode(u16::from_le_bytes(payload[..2].try_into().unwrap()));
    Ok((status, &payload[2..]))
}

/// Interprets a reply payload from the client's side: an OK status hands
/// back the raw report bytes, anything else becomes
/// [`EvalError::Remote`] carrying the wire status and message.
pub fn report_bytes_from_reply(payload: &[u8]) -> Result<Vec<u8>, EvalError> {
    let (status, body) = decode_reply(payload)?;
    if status.is_ok() {
        Ok(body.to_vec())
    } else {
        Err(EvalError::from_wire(
            status,
            String::from_utf8_lossy(body).into_owned(),
        ))
    }
}

/// [`report_bytes_from_reply`], decoded the rest of the way.
pub fn report_from_reply(payload: &[u8]) -> Result<EvalReport, EvalError> {
    let bytes = report_bytes_from_reply(payload)?;
    Ok(EvalReport::decode(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_replies_round_trip_report_bytes() {
        let body = b"pretend this is a report";
        let payload = encode_ok_reply(body);
        assert_eq!(report_bytes_from_reply(&payload).unwrap(), body);
    }

    #[test]
    fn status_replies_become_remote_errors() {
        let err = EvalError::Rejected(lego_eval::Reject::QueueFull { capacity: 8 });
        let payload = encode_status_reply(&err);
        match report_bytes_from_reply(&payload) {
            Err(EvalError::Remote { code, message }) => {
                assert_eq!(code, StatusCode::QUEUE_FULL);
                assert_eq!(message, err.to_string());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn short_payloads_are_truncated() {
        assert!(matches!(
            decode_reply(&[0]),
            Err(CodecError::Truncated { at: 1, needed: 1 })
        ));
    }
}
