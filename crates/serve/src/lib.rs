//! lego-serve: a long-lived evaluation server over the `EvalSession`
//! wire codec.
//!
//! The evaluation layer already made requests and reports *wire
//! payloads* — serializable, versioned, host-independent. This crate
//! adds the missing process: a server that keeps an
//! [`lego_eval::EvalSession`] warm across many clients, speaking
//! length-prefixed checksummed [`frame`]s of codec'd requests over TCP
//! and Unix sockets, with the unified
//! [`EvalError`](lego_eval::EvalError) / [`StatusCode`](lego_eval::StatusCode)
//! API as its wire status contract.
//!
//! The layering, bottom up:
//!
//! * [`frame`] — `"LGFR" | kind | len | checksum | payload` framing with
//!   never-trust-wire-lengths decoding;
//! * [`wire`] — the reply payload contract: `status u16 | body`, where
//!   OK carries an encoded report and anything else carries the stable
//!   status plus a rendered message;
//! * [`scheduler`] — bounded admission (validate → enqueue → reject with
//!   a status when full), worker fan-out over one shared warm session;
//! * [`server`] — listeners, per-connection reader/writer pairs, and the
//!   in-order pipelined reply discipline;
//! * [`client`] — the blocking client half;
//! * [`mix`] — deterministic request rosters for load generation.
//!
//! Three invariants hold end to end:
//!
//! 1. **Byte identity.** A served reply body is byte-identical to
//!    `EvalSession::new().evaluate(&request).encode()` — the server's
//!    warm cache and request counter never leak into replies
//!    ([`lego_eval::EvalSession::evaluate_pristine`]).
//! 2. **Failures are replies.** Malformed payloads, invalid requests,
//!    full queues, and oversized frames all come back as status frames
//!    on a live connection; only an unrecoverable stream desync closes it.
//! 3. **Bounded everything.** The admission queue, the per-frame payload
//!    length, and (optionally) the cache's resident bytes are all capped,
//!    and every cap refuses loudly instead of degrading silently.
//!
//! No async runtime: `std::net` + `std::thread`, one reader and one
//! writer thread per connection, a fixed worker pool behind a condvar.

pub mod client;
pub mod frame;
pub mod mix;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use client::Client;
pub use frame::{Frame, DEFAULT_MAX_FRAME_LEN};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Server, ServerConfig};
