//! Admission, batching, and fan-out: the part of the server that owns the
//! warm [`EvalSession`].
//!
//! A [`Scheduler`] is a bounded job queue in front of a worker pool.
//! Connections [`submit`](Scheduler::submit) decoded requests together
//! with a reply sender; workers drain jobs in small batches and price
//! them against one shared session, so every connection benefits from the
//! same memoized cache. Admission is where policy lives:
//!
//! * an invalid request (empty workload, bad hardware, nonpositive tile
//!   cap) is refused *before* it costs a queue slot;
//! * a full queue refuses with [`Reject::QueueFull`] — backpressure is a
//!   status the client sees, never silent latency;
//! * a draining scheduler refuses with [`Reject::ShuttingDown`] while the
//!   workers finish what was already admitted.
//!
//! Replies are the `status u16 | body` payloads of the wire layer, built
//! here so a worker's output can be forwarded verbatim by the connection
//! writer. Evaluation uses [`EvalSession::evaluate_pristine`], so a reply
//! is byte-identical to what a fresh offline session would report for the
//! same request — cache warmth is a server-side detail, not a wire-visible
//! one.

use crate::wire::encode_ok_reply;
use lego_eval::{CacheGauges, EvalError, EvalRequest, EvalSession, Reject};
use lego_obs::Obs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// How a scheduler is provisioned.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads draining the queue (0 = admit but never evaluate —
    /// useful for deterministic backpressure tests).
    pub workers: usize,
    /// Maximum admitted-but-unstarted jobs before `QueueFull`.
    pub queue_capacity: usize,
    /// Jobs a worker claims per wakeup; batching amortizes lock traffic
    /// when the queue is deep without starving other workers.
    pub batch: usize,
    /// Byte budget for the shared session's evaluation cache
    /// (`None` = unbounded).
    pub cache_budget: Option<usize>,
    /// Observability handle shared with the session.
    pub obs: Obs,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            queue_capacity: 256,
            batch: 8,
            cache_budget: None,
            obs: Obs::disabled(),
        }
    }
}

/// One admitted unit of work: a validated request and where its encoded
/// reply payload goes.
struct Job {
    request: EvalRequest,
    reply: mpsc::Sender<Vec<u8>>,
}

struct Shared {
    session: EvalSession,
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    capacity: usize,
    batch: usize,
    draining: AtomicBool,
    /// Serve-level request ids, minted at evaluation start and carried
    /// through the obs `request_scope` so every span of a request's
    /// lifetime shares one id in traces.
    next_id: AtomicU64,
    obs: Obs,
}

/// Bounded admission queue + worker pool over one warm [`EvalSession`].
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Builds the shared session and starts the worker pool.
    pub fn new(cfg: SchedulerConfig) -> Self {
        let mut session = EvalSession::new().with_obs(cfg.obs.clone());
        if let Some(budget) = cfg.cache_budget {
            session = session.with_cache_budget(budget);
        }
        let shared = Arc::new(Shared {
            session,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            capacity: cfg.queue_capacity.max(1),
            batch: cfg.batch.max(1),
            draining: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            obs: cfg.obs,
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admits one request. On success the reply payload will eventually
    /// arrive on `reply`; on refusal the error says why, and nothing was
    /// queued.
    pub fn submit(
        &self,
        request: EvalRequest,
        reply: mpsc::Sender<Vec<u8>>,
    ) -> Result<(), EvalError> {
        if self.shared.draining.load(Ordering::Acquire) {
            self.shared.obs.count("serve.rejected", 1);
            return Err(Reject::ShuttingDown.into());
        }
        request.validate().inspect_err(|_| {
            self.shared.obs.count("serve.invalid", 1);
        })?;
        let mut queue = self.shared.queue.lock().unwrap();
        if queue.len() >= self.shared.capacity {
            drop(queue);
            self.shared.obs.count("serve.rejected", 1);
            return Err(Reject::QueueFull {
                capacity: self.shared.capacity,
            }
            .into());
        }
        queue.push_back(Job { request, reply });
        self.shared
            .obs
            .record("serve/queue_depth", queue.len() as f64);
        drop(queue);
        self.shared.obs.count("serve.enqueued", 1);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Stops admitting, lets the workers drain everything already queued,
    /// and joins them.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        // With workers the queue is empty by now; without (test mode),
        // dropping the leftover jobs drops their reply senders, which
        // connection writers surface as SHUTTING_DOWN statuses.
        self.shared.queue.lock().unwrap().clear();
    }

    /// Cache residency/eviction gauges of the shared session.
    pub fn gauges(&self) -> CacheGauges {
        self.shared.session.cache().gauges()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.work_ready.wait(queue).unwrap();
            }
            let n = queue.len().min(shared.batch);
            queue.drain(..n).collect()
        };
        // If this claim left jobs behind, wake a sibling before pricing.
        shared.work_ready.notify_one();
        for job in batch {
            let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
            let _scope = shared.obs.request_scope(id);
            let payload = {
                let _span = shared.obs.span("serve/evaluate");
                let report = shared.session.evaluate_pristine(&job.request);
                encode_ok_reply(&report.encode())
            };
            shared.obs.count("serve.evaluated", 1);
            // A send failure means the connection is gone; the evaluation
            // still warmed the cache, so the work is not wasted.
            let _ = job.reply.send(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::report_from_reply;
    use lego_eval::StatusCode;
    use lego_sim::HwConfig;
    use lego_workloads::{zoo, Model};

    fn request() -> EvalRequest {
        EvalRequest::builder(zoo::lenet(), HwConfig::lego_256())
            .build()
            .unwrap()
    }

    fn sink() -> (mpsc::Sender<Vec<u8>>, mpsc::Receiver<Vec<u8>>) {
        mpsc::channel()
    }

    #[test]
    fn queue_full_is_a_deterministic_rejection() {
        // No workers: nothing drains, so the third submit must refuse.
        let s = Scheduler::new(SchedulerConfig {
            workers: 0,
            queue_capacity: 2,
            ..Default::default()
        });
        let (tx, _rx) = sink();
        s.submit(request(), tx.clone()).unwrap();
        s.submit(request(), tx.clone()).unwrap();
        let err = s.submit(request(), tx).unwrap_err();
        assert_eq!(err.status(), StatusCode::QUEUE_FULL);
        assert!(err.to_string().contains('2'), "{err}");
    }

    #[test]
    fn draining_scheduler_refuses_new_work() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 0,
            ..Default::default()
        });
        s.shutdown();
        let (tx, _rx) = sink();
        let err = s.submit(request(), tx).unwrap_err();
        assert_eq!(err.status(), StatusCode::SHUTTING_DOWN);
    }

    #[test]
    fn invalid_requests_never_cost_a_queue_slot() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 0,
            queue_capacity: 1,
            ..Default::default()
        });
        let empty = EvalRequest::new(
            Model {
                name: "empty".into(),
                layers: vec![],
            },
            HwConfig::lego_256(),
        );
        let (tx, _rx) = sink();
        let err = s.submit(empty, tx.clone()).unwrap_err();
        assert_eq!(err.status(), StatusCode::EMPTY_WORKLOAD);
        // The slot is still free for a valid request.
        s.submit(request(), tx).unwrap();
    }

    #[test]
    fn workers_reply_byte_identically_to_an_offline_session() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 2,
            ..Default::default()
        });
        let offline = EvalSession::new().evaluate(&request()).encode();
        // Submit the same request repeatedly: the first run warms the
        // shared cache, yet every reply must stay pristine.
        let receivers: Vec<_> = (0..6)
            .map(|_| {
                let (tx, rx) = sink();
                s.submit(request(), tx).unwrap();
                rx
            })
            .collect();
        for rx in receivers {
            let payload = rx.recv().unwrap();
            let report = report_from_reply(&payload).unwrap();
            assert_eq!(report.encode(), offline);
        }
        s.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let s = Scheduler::new(SchedulerConfig {
            workers: 1,
            ..Default::default()
        });
        let receivers: Vec<_> = (0..4)
            .map(|_| {
                let (tx, rx) = sink();
                s.submit(request(), tx).unwrap();
                rx
            })
            .collect();
        s.shutdown();
        for rx in receivers {
            assert!(rx.recv().is_ok(), "admitted work must be answered");
        }
    }
}
