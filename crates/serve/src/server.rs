//! The long-lived server: listeners, connections, and the reply
//! discipline that makes failures visible instead of fatal.
//!
//! One [`Server`] owns one [`Scheduler`] (and so one warm session) and
//! any number of listening endpoints — TCP, Unix sockets, or both at
//! once. Each accepted connection gets a reader (the connection thread)
//! and a writer thread joined by an ordered queue, so a client may
//! pipeline requests and still receive replies in submission order even
//! though the worker pool prices them out of order.
//!
//! The error discipline, end to end:
//!
//! * a *well-framed but bad* payload (undecodable request, invalid
//!   hardware, refused admission) earns a status reply and the
//!   connection keeps going — the stream is still frame-aligned;
//! * an *oversized* frame earns a status reply, the announced payload is
//!   discarded, and the stream resynchronizes on the next header;
//! * a *desynchronized* stream (bad magic, checksum mismatch, truncation
//!   mid-frame) earns a best-effort status reply and the connection
//!   closes — there is no trustworthy frame boundary left to resume at.
//!
//! Nothing in the read path panics on wire input, and no failure mode
//! silently drops a request that was acknowledged into the queue.

use crate::frame::{self, DEFAULT_MAX_FRAME_LEN, KIND_REPLY, KIND_REQUEST, KIND_SHUTDOWN};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::wire::{encode_reply, encode_status_reply};
use lego_eval::{CacheGauges, CodecError, EvalError, EvalRequest, StatusCode};
use lego_obs::Obs;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

/// How a server is provisioned. Everything has a sensible default; the
/// `lego_serve` binary maps its flags straight onto these fields.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads pricing admitted requests.
    pub workers: usize,
    /// Admission queue depth before `QUEUE_FULL` rejections.
    pub queue_capacity: usize,
    /// Byte budget for the shared evaluation cache (`None` = unbounded).
    pub cache_budget: Option<usize>,
    /// Largest frame payload a connection will accept.
    pub max_frame_len: usize,
    /// Observability handle threaded through accept/queue/evaluate/reply.
    pub obs: Obs,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            cache_budget: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            obs: Obs::disabled(),
        }
    }
}

struct Stop {
    requested: Mutex<bool>,
    cv: Condvar,
    flag: AtomicBool,
}

struct ServerShared {
    scheduler: Scheduler,
    max_frame_len: usize,
    obs: Obs,
    stop: Stop,
}

impl ServerShared {
    fn request_stop(&self) {
        self.stop.flag.store(true, Ordering::Release);
        *self.stop.requested.lock().unwrap() = true;
        self.stop.cv.notify_all();
    }

    fn stopping(&self) -> bool {
        self.stop.flag.load(Ordering::Acquire)
    }
}

struct Endpoint {
    thread: thread::JoinHandle<()>,
    /// Unblocks the endpoint's `accept` so it can observe the stop flag
    /// (a self-connection — std listeners have no portable interrupt).
    wake: Box<dyn Fn() + Send>,
    /// Socket file to unlink on shutdown, for Unix endpoints.
    unlink: Option<PathBuf>,
}

/// A running evaluation server. Dropping it shuts everything down.
pub struct Server {
    shared: Arc<ServerShared>,
    endpoints: Mutex<Vec<Endpoint>>,
}

impl Server {
    /// Builds the scheduler and worker pool; add endpoints with
    /// [`listen_tcp`](Server::listen_tcp) / [`listen_unix`](Server::listen_unix).
    pub fn new(cfg: ServerConfig) -> Self {
        let scheduler = Scheduler::new(SchedulerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            cache_budget: cfg.cache_budget,
            obs: cfg.obs.clone(),
            ..Default::default()
        });
        Server {
            shared: Arc::new(ServerShared {
                scheduler,
                max_frame_len: cfg.max_frame_len,
                obs: cfg.obs,
                stop: Stop {
                    requested: Mutex::new(false),
                    cv: Condvar::new(),
                    flag: AtomicBool::new(false),
                },
            }),
            endpoints: Mutex::new(Vec::new()),
        }
    }

    /// Starts accepting framed connections on a TCP address and returns
    /// the bound address (so `127.0.0.1:0` picks a free port).
    pub fn listen_tcp<A: ToSocketAddrs>(&self, addr: A) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = thread::spawn(move || {
            accept_loop(&shared, || listener.accept().map(|(s, _)| s));
        });
        self.endpoints.lock().unwrap().push(Endpoint {
            thread,
            wake: Box::new(move || {
                let _ = TcpStream::connect(local);
            }),
            unlink: None,
        });
        Ok(local)
    }

    /// Starts accepting framed connections on a Unix socket path.
    pub fn listen_unix<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        let shared = Arc::clone(&self.shared);
        let thread = thread::spawn(move || {
            accept_loop(&shared, || listener.accept().map(|(s, _)| s));
        });
        let wake_path = path.clone();
        self.endpoints.lock().unwrap().push(Endpoint {
            thread,
            wake: Box::new(move || {
                let _ = UnixStream::connect(&wake_path);
            }),
            unlink: Some(path),
        });
        Ok(())
    }

    /// Blocks until some connection sends a `SHUTDOWN` frame (or
    /// [`shutdown`](Server::shutdown) is called from another thread).
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self.shared.stop.requested.lock().unwrap();
        while !*requested {
            requested = self.shared.stop.cv.wait(requested).unwrap();
        }
    }

    /// Stops accepting, drains admitted work, joins the listeners and
    /// workers, and removes Unix socket files.
    pub fn shutdown(&self) {
        self.shared.request_stop();
        let mut endpoints = self.endpoints.lock().unwrap();
        for ep in endpoints.iter() {
            (ep.wake)();
        }
        for ep in endpoints.drain(..) {
            let _ = ep.thread.join();
            if let Some(path) = ep.unlink {
                let _ = std::fs::remove_file(path);
            }
        }
        drop(endpoints);
        self.shared.scheduler.shutdown();
    }

    /// Cache residency/eviction gauges of the shared session.
    pub fn gauges(&self) -> CacheGauges {
        self.shared.scheduler.gauges()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<S>(shared: &Arc<ServerShared>, accept: impl Fn() -> io::Result<S>)
where
    S: ConnStream,
{
    loop {
        match accept() {
            Ok(stream) => {
                if shared.stopping() {
                    return;
                }
                shared.obs.count("serve.accepted", 1);
                let shared = Arc::clone(shared);
                thread::spawn(move || handle_connection(&shared, stream));
            }
            Err(_) if shared.stopping() => return,
            // Transient accept failures (EMFILE, aborted handshakes)
            // must not take the endpoint down.
            Err(_) => thread::yield_now(),
        }
    }
}

/// The two stream types a connection can run over; `writer` hands the
/// reply thread its own handle to the same socket.
trait ConnStream: Read + Send + Sized + 'static {
    type Writer: Write + Send + 'static;
    fn writer(&self) -> io::Result<Self::Writer>;
}

impl ConnStream for TcpStream {
    type Writer = TcpStream;
    fn writer(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
}

impl ConnStream for UnixStream {
    type Writer = UnixStream;
    fn writer(&self) -> io::Result<UnixStream> {
        self.try_clone()
    }
}

/// What the reader hands the per-connection writer thread, in request
/// order.
enum WriterMsg {
    /// A reply payload ready now (status replies from admission).
    Ready(Vec<u8>),
    /// A reply still being priced; the writer blocks on it so replies
    /// leave the socket in submission order.
    Pending(mpsc::Receiver<Vec<u8>>),
}

fn writer_loop(mut w: impl Write, queue: mpsc::Receiver<WriterMsg>, obs: &Obs) {
    while let Ok(msg) = queue.recv() {
        let payload = match msg {
            WriterMsg::Ready(payload) => payload,
            WriterMsg::Pending(rx) => match rx.recv() {
                Ok(payload) => payload,
                // The scheduler dropped the job mid-drain; tell the
                // client rather than going silent.
                Err(_) => {
                    encode_status_reply(&EvalError::Rejected(lego_eval::Reject::ShuttingDown))
                }
            },
        };
        let wrote = obs.time("serve/reply_write", || {
            frame::write_frame(&mut w, KIND_REPLY, &payload)
        });
        if wrote.is_err() {
            // The client stopped reading; drain the queue so pending
            // evaluations are received (and dropped) without blocking
            // the workers' send side.
            for _ in queue.iter() {}
            return;
        }
        obs.count("serve.replies", 1);
    }
}

fn handle_connection<S: ConnStream>(shared: &ServerShared, mut stream: S) {
    let Ok(writer) = stream.writer() else { return };
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let obs = shared.obs.clone();
    let writer_thread = thread::spawn(move || writer_loop(writer, rx, &obs));

    loop {
        match frame::read_frame(&mut stream, shared.max_frame_len) {
            Ok(None) => break, // clean close between frames
            Ok(Some(f)) if f.kind == KIND_REQUEST => {
                shared.obs.count("serve.frames_in", 1);
                match shared
                    .obs
                    .time("serve/decode_request", || EvalRequest::decode(&f.payload))
                {
                    Ok(request) => {
                        let (reply_tx, reply_rx) = mpsc::channel();
                        match shared.scheduler.submit(request, reply_tx) {
                            Ok(()) => {
                                if tx.send(WriterMsg::Pending(reply_rx)).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                shared.obs.count("serve.status_replies", 1);
                                if tx.send(WriterMsg::Ready(encode_status_reply(&e))).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        // The frame was intact — the stream is still
                        // aligned, so refuse the payload and keep going.
                        shared.obs.count("serve.status_replies", 1);
                        let err = EvalError::from(e);
                        if tx
                            .send(WriterMsg::Ready(encode_status_reply(&err)))
                            .is_err()
                        {
                            break;
                        }
                    }
                }
            }
            Ok(Some(f)) if f.kind == KIND_SHUTDOWN => {
                let _ = tx.send(WriterMsg::Ready(encode_reply(StatusCode::OK, b"")));
                shared.request_stop();
                break;
            }
            Ok(Some(f)) => {
                // A REPLY frame sent at the server: protocol misuse.
                let err = EvalError::Usage(format!(
                    "unexpected frame kind {} on the request side",
                    f.kind
                ));
                shared.obs.count("serve.status_replies", 1);
                let _ = tx.send(WriterMsg::Ready(encode_status_reply(&err)));
                break;
            }
            Err(CodecError::FrameTooLarge { len, max }) => {
                // Header consumed, payload not: refuse, skip, resume.
                shared.obs.count("serve.status_replies", 1);
                let err = EvalError::from(CodecError::FrameTooLarge { len, max });
                if tx
                    .send(WriterMsg::Ready(encode_status_reply(&err)))
                    .is_err()
                {
                    break;
                }
                if frame::discard(&mut stream, len).is_err() {
                    break;
                }
            }
            Err(e) => {
                // Desynchronized or dead stream: best-effort status,
                // then close.
                shared.obs.count("serve.status_replies", 1);
                let _ = tx.send(WriterMsg::Ready(encode_status_reply(&EvalError::from(e))));
                break;
            }
        }
    }
    drop(tx);
    let _ = writer_thread.join();
}
