//! Mapping search (paper §VI-A): "a simple mapping search tool that
//! identifies the best mapping (dataflow and tiling) for every neural
//! network layer based on the simulated #cycles and energy".
//!
//! The per-layer dataflow choice lives in `lego-sim`'s
//! [`lego_sim::best_mapping`]; this crate adds whole-model
//! mapping with a per-layer report, plus a tiling refinement that shrinks
//! DRAM traffic when a layer's working set nearly fits on chip.

use lego_model::{CostContext, TechModel};
use lego_sim::{aggregate, best_mapping, best_mapping_ctx, HwConfig, LayerPerf, ModelPerf};
use lego_workloads::{Layer, Model};

/// One mapped layer: the layer, its repetition count, and its performance.
#[derive(Debug, Clone)]
pub struct MappedLayer {
    /// Layer name.
    pub name: String,
    /// Repetition count.
    pub count: i64,
    /// Chosen mapping and predicted performance.
    pub perf: LayerPerf,
}

/// Full mapping of a model onto a hardware configuration.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Per-layer decisions in execution order.
    pub layers: Vec<MappedLayer>,
    /// Aggregated model performance.
    pub perf: ModelPerf,
}

/// Maps every layer of `model` onto `hw`, choosing the best dataflow per
/// layer, and aggregates the result.
///
/// # Examples
///
/// ```
/// use lego_mapper::map_model;
/// use lego_model::TechModel;
/// use lego_sim::HwConfig;
///
/// let model = lego_workloads::zoo::resnet50();
/// let mapping = map_model(&model, &HwConfig::lego_256(), &TechModel::default());
/// assert!(mapping.perf.gops > 0.0);
/// assert_eq!(mapping.layers.len(), model.layers.len());
/// ```
pub fn map_model(model: &Model, hw: &HwConfig, tech: &TechModel) -> Mapping {
    map_model_ctx(model, &CostContext::new(hw.clone(), *tech), None)
}

/// Maps every layer against a prebuilt [`CostContext`] with an optional L1
/// tile-edge cap.
///
/// The context is built **once** per configuration (its NoC models and
/// SRAM fit are part of the price of the hardware, not of any one layer),
/// which is what the design-space explorer and the benchmark harnesses
/// thread through their evaluation loops.
pub fn map_model_ctx(model: &Model, ctx: &CostContext, tile_cap: Option<i64>) -> Mapping {
    map_model_with(model, &ctx.tech, |l| best_mapping_ctx(l, ctx, tile_cap))
}

/// Maps every layer through a caller-supplied evaluator and aggregates.
///
/// This is the injection point for alternative per-layer evaluations — the
/// design-space explorer routes layers through its memoized `EvalCache`
/// here, so for a given hardware configuration each distinct layer shape is
/// simulated once, no matter how many strategies or repeated blocks revisit
/// it.
pub fn map_model_with<F>(model: &Model, tech: &TechModel, mut eval: F) -> Mapping
where
    F: FnMut(&Layer) -> LayerPerf,
{
    let layers: Vec<MappedLayer> = model
        .layers
        .iter()
        .map(|l| MappedLayer {
            name: l.name.clone(),
            count: l.count,
            perf: eval(l),
        })
        .collect();
    let pairs: Vec<(i64, LayerPerf)> = layers.iter().map(|m| (m.count, m.perf.clone())).collect();
    let perf = aggregate(model, &pairs, tech);
    Mapping { layers, perf }
}

/// Counts how many layers chose each dataflow — used by the evaluation to
/// show that fused designs actually switch at runtime (Table V).
pub fn dataflow_histogram(mapping: &Mapping) -> Vec<(&'static str, usize)> {
    let mut hist: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for l in &mapping.layers {
        *hist.entry(l.perf.mapping.name()).or_default() += 1;
    }
    hist.into_iter().collect()
}

/// Convenience: maps a single standalone layer.
pub fn map_layer(layer: &Layer, hw: &HwConfig, tech: &TechModel) -> LayerPerf {
    best_mapping(layer, hw, tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sim::SpatialMapping;
    use lego_workloads::zoo;

    #[test]
    fn mobilenet_switches_dataflows() {
        let hw = HwConfig::lego_256();
        let mapping = map_model(&zoo::mobilenet_v2(), &hw, &TechModel::default());
        let hist = dataflow_histogram(&mapping);
        // Depthwise layers pick OHOW, pointwise convs pick ICOC or MN.
        assert!(hist.iter().any(|(n, c)| *n == "OHOW" && *c > 0), "{hist:?}");
        assert!(
            hist.iter()
                .any(|(n, c)| (*n == "ICOC" || *n == "MN") && *c > 0),
            "{hist:?}"
        );
    }

    #[test]
    fn restricted_hardware_maps_worse() {
        let full = HwConfig::lego_256();
        let mut icoc_only = HwConfig::lego_256();
        icoc_only.dataflows = vec![SpatialMapping::ConvIcOc, SpatialMapping::GemmMN];
        let t = TechModel::default();
        let m = zoo::mobilenet_v2();
        let a = map_model(&m, &full, &t);
        let b = map_model(&m, &icoc_only, &t);
        assert!(
            a.perf.cycles < b.perf.cycles,
            "fused dataflows must win on MobileNetV2"
        );
    }

    #[test]
    fn ctx_mapping_matches_wrapper() {
        let hw = HwConfig::lego_256();
        let t = TechModel::default();
        let m = zoo::mobilenet_v2();
        let a = map_model(&m, &hw, &t);
        let b = map_model_ctx(&m, &CostContext::new(hw.clone(), t), None);
        assert_eq!(a.perf.cycles, b.perf.cycles);
        assert_eq!(a.layers.len(), b.layers.len());
    }

    #[test]
    fn per_layer_counts_preserved() {
        let hw = HwConfig::lego_256();
        let m = zoo::bert_base();
        let mapping = map_model(&m, &hw, &TechModel::default());
        let total: i64 = mapping.layers.iter().map(|l| l.count).sum();
        let expect: i64 = m.layers.iter().map(|l| l.count).sum();
        assert_eq!(total, expect);
    }
}
