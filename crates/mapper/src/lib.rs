//! Mapping search (paper §VI-A): "a simple mapping search tool that
//! identifies the best mapping (dataflow and tiling) for every neural
//! network layer based on the simulated #cycles and energy".
//!
//! The per-layer dataflow choice lives in `lego-sim`'s
//! [`lego_sim::best_mapping_ctx`]; this crate adds whole-model mapping
//! with a per-layer report. Both the whole-model path
//! ([`map_model_ctx`]) and the single-layer convenience ([`map_layer`])
//! are the same internals an [`lego_eval::EvalSession`] runs — `map_layer`
//! literally builds a one-shot session — so the two can never disagree.
//! (The pre-context entry points, `map_model` and `map_model_with`, served
//! a full `#[deprecated]` cycle and are gone; evaluate an
//! [`lego_eval::EvalRequest`] through a session instead.)

use lego_eval::{EvalRequest, EvalSession};
use lego_mapspace::{MapSearch, RewriteOutcome, SearchConfig};
use lego_model::{CostContext, TechModel};
use lego_obs::Obs;
use lego_sim::{aggregate_iter, best_mapping_obs, HwConfig, LayerPerf, ModelPerf};
use lego_workloads::{Layer, Model};
use std::sync::Arc;

/// One mapped layer: the layer, its repetition count, and its performance.
#[derive(Debug, Clone)]
pub struct MappedLayer {
    /// Layer name (shared with the workload's interned name).
    pub name: Arc<str>,
    /// Repetition count.
    pub count: i64,
    /// Chosen mapping and predicted performance.
    pub perf: LayerPerf,
}

/// Full mapping of a model onto a hardware configuration.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Per-layer decisions in execution order.
    pub layers: Vec<MappedLayer>,
    /// Aggregated model performance.
    pub perf: ModelPerf,
}

/// Maps every layer against a prebuilt [`CostContext`] with an optional L1
/// tile-edge cap.
///
/// The context is built **once** per configuration (its NoC models and
/// SRAM fit are part of the price of the hardware, not of any one layer).
/// This is the layer loop an [`lego_eval::EvalSession`] runs per request;
/// it stays public as the low-level form for callers that manage their own
/// contexts.
///
/// # Examples
///
/// ```
/// use lego_mapper::map_model_ctx;
/// use lego_model::{CostContext, TechModel};
/// use lego_sim::HwConfig;
///
/// let model = lego_workloads::zoo::resnet50();
/// let ctx = CostContext::new(HwConfig::lego_256(), TechModel::default());
/// let mapping = map_model_ctx(&model, &ctx, None);
/// assert!(mapping.perf.gops > 0.0);
/// assert_eq!(mapping.layers.len(), model.layers.len());
/// ```
pub fn map_model_ctx(model: &Model, ctx: &CostContext, tile_cap: Option<i64>) -> Mapping {
    map_model_obs(model, ctx, tile_cap, &Obs::disabled())
}

/// [`map_model_ctx`] with observability: the whole mapping runs under a
/// `mapper/map_model` span, every layer's dataflow sweep is counted into
/// `mapper.candidates` (and `sim.mappings_tried` underneath), so an
/// enumerated mapping trace lines up against a `mapspace.*` rewrite-search
/// trace in the same summary output.
pub fn map_model_obs(
    model: &Model,
    ctx: &CostContext,
    tile_cap: Option<i64>,
    obs: &Obs,
) -> Mapping {
    let _span = obs.span("mapper/map_model");
    obs.count("mapper.layers", model.layers.len() as u64);
    let layers: Vec<MappedLayer> = model
        .layers
        .iter()
        .map(|l| {
            obs.count("mapper.candidates", ctx.hw.dataflows.len().max(1) as u64);
            MappedLayer {
                name: Arc::clone(&l.name),
                count: l.count,
                perf: best_mapping_obs(l, ctx, tile_cap, obs),
            }
        })
        .collect();
    let perf = aggregate_iter(model, layers.iter().map(|m| (m.count, &m.perf)), &ctx.tech);
    Mapping { layers, perf }
}

/// Rewrite-based whole-model mapping (ROADMAP item 3): seeds an e-graph
/// from the enumerated-best assignment, saturates the
/// dataflow/tiling/fusion rewrite rules, and extracts the minimum-EDP
/// assignment priced through `session` (sharing its
/// [`EvalCache`](lego_eval::EvalCache)). The outcome's
/// `enumerated_edp` is exactly what [`map_model_ctx`] achieves on the
/// same hardware, so `outcome.improved()` reports whether rewriting beat
/// enumeration.
///
/// # Examples
///
/// ```
/// use lego_eval::EvalSession;
/// use lego_mapper::map_model_rewrite;
/// use lego_model::TechModel;
/// use lego_sim::HwConfig;
///
/// let model = lego_workloads::zoo::lenet();
/// let session = EvalSession::new();
/// let out = map_model_rewrite(&model, HwConfig::lego_256(), TechModel::default(), None, &session);
/// assert!(out.rewrite_edp <= out.enumerated_edp);
/// ```
pub fn map_model_rewrite(
    model: &Model,
    hw: HwConfig,
    tech: TechModel,
    tile_cap: Option<i64>,
    session: &EvalSession,
) -> RewriteOutcome {
    MapSearch::new(model, hw, tech)
        .with_tile_cap(tile_cap)
        .with_config(SearchConfig::default())
        .with_obs(session.obs().clone())
        .run(session)
}

/// Counts how many layers chose each dataflow — used by the evaluation to
/// show that fused designs actually switch at runtime (Table V).
pub fn dataflow_histogram(mapping: &Mapping) -> Vec<(&'static str, usize)> {
    let mut hist: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for l in &mapping.layers {
        *hist.entry(l.perf.mapping.name()).or_default() += 1;
    }
    hist.into_iter().collect()
}

/// Convenience: maps a single standalone layer.
///
/// Routed through a one-shot [`EvalSession`] over a single-layer model, so
/// this is *definitionally* the per-layer result of the whole-model path —
/// the two evaluation entry points share one implementation and can never
/// disagree.
pub fn map_layer(layer: &Layer, hw: &HwConfig, tech: &TechModel) -> LayerPerf {
    let model = Model {
        name: layer.name.to_string(),
        layers: vec![layer.clone()],
    };
    let report = EvalSession::new().evaluate(&EvalRequest::new(model, hw.clone()).with_tech(*tech));
    report
        .per_layer
        .into_iter()
        .next()
        .expect("one layer in, one layer report out")
        .perf
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sim::SpatialMapping;
    use lego_workloads::zoo;

    fn ctx(hw: &HwConfig) -> CostContext {
        CostContext::new(hw.clone(), TechModel::default())
    }

    #[test]
    fn mobilenet_switches_dataflows() {
        let hw = HwConfig::lego_256();
        let mapping = map_model_ctx(&zoo::mobilenet_v2(), &ctx(&hw), None);
        let hist = dataflow_histogram(&mapping);
        // Depthwise layers pick OHOW, pointwise convs pick ICOC or MN.
        assert!(hist.iter().any(|(n, c)| *n == "OHOW" && *c > 0), "{hist:?}");
        assert!(
            hist.iter()
                .any(|(n, c)| (*n == "ICOC" || *n == "MN") && *c > 0),
            "{hist:?}"
        );
    }

    #[test]
    fn restricted_hardware_maps_worse() {
        let full = HwConfig::lego_256();
        let mut icoc_only = HwConfig::lego_256();
        icoc_only.dataflows = vec![SpatialMapping::ConvIcOc, SpatialMapping::GemmMN];
        let m = zoo::mobilenet_v2();
        let a = map_model_ctx(&m, &ctx(&full), None);
        let b = map_model_ctx(&m, &ctx(&icoc_only), None);
        assert!(
            a.perf.cycles < b.perf.cycles,
            "fused dataflows must win on MobileNetV2"
        );
    }

    #[test]
    fn session_path_matches_the_ctx_path() {
        // The golden equivalence the retired shims used to pin, kept on
        // the supported surfaces: a one-shot session over a request is
        // byte-identical to the context path per layer and in aggregate.
        let hw = HwConfig::lego_256();
        let t = TechModel::default();
        let m = zoo::mobilenet_v2();
        let report =
            EvalSession::new().evaluate(&EvalRequest::new(m.clone(), hw.clone()).with_tech(t));
        let b = map_model_ctx(&m, &ctx(&hw), None);
        assert_eq!(report.model, b.perf);
        assert_eq!(report.per_layer.len(), b.layers.len());
        for (x, y) in report.per_layer.iter().zip(&b.layers) {
            assert_eq!(x.perf, y.perf, "{}", x.name);
        }
    }

    #[test]
    fn map_layer_agrees_with_whole_model_mapping() {
        // The satellite fix this test pins: `map_layer` and the
        // whole-model path share the session internals, so a layer priced
        // standalone equals the same layer priced inside a model.
        let hw = HwConfig::lego_256();
        let t = TechModel::default();
        let m = zoo::mobilenet_v2();
        let whole = map_model_ctx(&m, &ctx(&hw), None);
        for (layer, mapped) in m.layers.iter().zip(&whole.layers) {
            assert_eq!(map_layer(layer, &hw, &t), mapped.perf, "{}", layer.name);
        }
    }

    #[test]
    fn instrumented_mapping_is_unperturbed_and_counted() {
        let hw = HwConfig::lego_256();
        let m = zoo::mobilenet_v2();
        let obs = Obs::deterministic();
        let plain = map_model_ctx(&m, &ctx(&hw), None);
        let instrumented = map_model_obs(&m, &ctx(&hw), None, &obs);
        assert_eq!(plain.perf, instrumented.perf, "obs must not perturb");
        let summary = obs.summary();
        assert_eq!(summary.counter("mapper.layers"), m.layers.len() as u64);
        assert_eq!(
            summary.counter("mapper.candidates"),
            (m.layers.len() * hw.dataflows.len()) as u64
        );
        assert_eq!(
            summary.counter("mapper.candidates"),
            summary.counter("sim.mappings_tried"),
            "mapper candidates are exactly the sim-level sweep"
        );
    }

    #[test]
    fn rewrite_entry_point_baselines_at_the_enumerated_mapping() {
        let hw = HwConfig::lego_256();
        let t = TechModel::default();
        let m = zoo::mobilenet_v2();
        let session = EvalSession::new();
        let out = map_model_rewrite(&m, hw.clone(), t, None, &session);
        // The outcome's baseline is exactly the enumerated mapping's EDP.
        let enumerated = map_model_ctx(&m, &ctx(&hw), None);
        let time_s = enumerated.perf.cycles as f64 / (t.freq_ghz * 1e9);
        let energy_pj = enumerated.perf.watts * time_s * 1e12;
        let edp = enumerated.perf.cycles as f64 * energy_pj;
        assert!((out.enumerated_edp - edp).abs() <= 1e-6 * edp);
        assert!(out.rewrite_edp <= out.enumerated_edp);
    }

    #[test]
    fn per_layer_counts_preserved() {
        let hw = HwConfig::lego_256();
        let m = zoo::bert_base();
        let mapping = map_model_ctx(&m, &ctx(&hw), None);
        let total: i64 = mapping.layers.iter().map(|l| l.count).sum();
        let expect: i64 = m.layers.iter().map(|l| l.count).sum();
        assert_eq!(total, expect);
    }
}
