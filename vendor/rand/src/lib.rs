//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace must build without touching the network, so instead of the
//! real `rand` this vendored stub provides exactly the surface the tests
//! use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer `Range` / `RangeInclusive` bounds. The
//! generator is splitmix64 — deterministic, seedable, and statistically
//! fine for randomized testing (it is the seeding generator of the real
//! `StdRng`'s ancestors), but **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Types that can seed and construct an RNG.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range-like set of `T`.
pub trait SampleRange<T> {
    /// Draws one value using `rng` as the entropy source.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Raw 64-bit output, the base of every other method.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform boolean.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The named generators of the real crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            assert_eq!(x, b.gen_range(-5i64..=5));
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
