//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace must build offline, so this vendored stub implements just
//! the surface the test suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(..)]` header) expanding to ordinary `#[test]`
//!   functions;
//! * [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//!   implemented for integer ranges, tuples, [`collection::vec`],
//!   [`bool::ANY`], [`sample::select`], and [`Just`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Generation is deterministic: each test derives its RNG seed from its own
//! name, so failures reproduce exactly across runs. Unlike the real crate
//! there is **no shrinking** — a failing case reports the raw input.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Deterministic splitmix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a), so every test is reproducible.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// How a test case ended short of success.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains how.
    Fail(String),
    /// A `prop_assume!` filtered this input out (not a failure).
    Reject,
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` = number of accepted inputs per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chooses a follow-up strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy drawing between `size` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit option lists.
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Drives one `proptest!`-generated test: draws inputs from `strategy`
/// until `config.cases` accepted runs pass, panicking on the first failure.
///
/// # Panics
///
/// Panics when a case fails or when every input is rejected.
pub fn run_proptest<S: Strategy>(
    config: ProptestConfig,
    name: &str,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) where
    S::Value: Debug,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases).saturating_mul(20).max(200);
    while accepted < config.cases && attempts < max_attempts {
        attempts += 1;
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        match test(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {accepted} passing case(s): {msg}\n    input: {repr}")
            }
        }
    }
    assert!(
        accepted > 0,
        "proptest `{name}`: all {attempts} generated inputs were rejected"
    );
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Rejects the current case (skips it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn` runs its body against `cases`
/// freshly generated inputs bound from `pattern in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __strategy = ( $( $strat, )+ );
                $crate::run_proptest($cfg, stringify!($name), &__strategy, |__case| {
                    let ( $( $pat, )+ ) = __case;
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = (0i64..100, 0i64..100).prop_map(|(a, b)| a * 100 + b);
        let mut r1 = crate::TestRng::from_name("x");
        let mut r2 = crate::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -6i64..=6, n in 1usize..5) {
            prop_assert!((-6..=6).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0i32..10, 3usize)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn assume_rejects((a, b) in (0i32..10, 0i32..10)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
