//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — measuring simple
//! wall-clock medians instead of criterion's statistical machinery. Passing
//! `--test` (as `cargo test --benches` does) runs each closure once.

use std::fmt::Display;
use std::time::Instant;

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    iters: u64,
    /// Median time per iteration, filled by [`Bencher::iter`].
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping the fastest-of-N per-iteration estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut best = f64::INFINITY;
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            let dt = start.elapsed().as_nanos() as f64;
            std::hint::black_box(&out);
            if dt < best {
                best = dt;
            }
        }
        self.elapsed_ns = best;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed repetitions each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: effective_iters(self.samples),
            elapsed_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.0, b.elapsed_ns);
        self
    }

    /// Benches a closure parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: effective_iters(self.samples),
            elapsed_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.id, b.elapsed_ns);
        self
    }

    /// Ends the group (printing nothing extra in this stub).
    pub fn finish(self) {}
}

/// Either a string or a [`BenchmarkId`] names a benchmark.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

fn effective_iters(samples: u64) -> u64 {
    // `cargo test --benches` passes --test: run each body once as a smoke.
    if std::env::args().any(|a| a == "--test") {
        1
    } else {
        samples
    }
}

fn report(group: &str, id: &str, ns: f64) {
    if ns >= 1e6 {
        println!("{group}/{id:<28} {:>10.3} ms", ns / 1e6);
    } else {
        println!("{group}/{id:<28} {:>10.3} µs", ns / 1e3);
    }
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    /// Benches a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: effective_iters(10),
            elapsed_ns: 0.0,
        };
        f(&mut b);
        report("bench", id, b.elapsed_ns);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut ran = 0;
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 1);
    }
}
