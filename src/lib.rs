//! # LEGO — Spatial Accelerator Generation and Optimization
//!
//! A complete Rust reproduction of *LEGO: Spatial Accelerator Generation
//! and Optimization for Tensor Applications* (HPCA 2025). This facade crate
//! re-exports the whole workspace:
//!
//! * [`linalg`] — integer linear algebra (HNF, nullspaces, affine maps);
//! * [`graph`] — Chu-Liu/Edmonds arborescences, MSTs, union-find;
//! * [`lp`] — simplex, min-cost flow, exact delay-matching, pin remapping;
//! * [`ir`] — the relation-centric workload/dataflow representation (§III);
//! * [`frontend`] — interconnect planning, fusion, memory banking (§IV);
//! * [`backend`] — the primitive DAG and its optimization passes (§V);
//! * [`rtl`] — Verilog emission and edge-accurate functional simulation;
//! * [`model`] — 28 nm area/power/energy tables, a CACTI-style SRAM fit,
//!   and the unified cost stack: one `CostContext { hw, tech, sram, noc }`
//!   per configuration, priced through `ComputeCost` / `MemoryCost` /
//!   `NocCost` component traits;
//! * [`eval`] — the canonical request/response evaluation layer: an
//!   `EvalSession` owns `CostContext` construction, the memoized
//!   `EvalCache`, and the worker pool, and prices serializable
//!   `EvalRequest`s into `EvalReport`s (`evaluate` / `evaluate_batch` /
//!   `evaluate_stream`); the versioned binary codec makes requests and
//!   reports wire payloads a multi-host driver can ship anywhere;
//! * [`serve`] — the long-lived evaluation server over that codec:
//!   framed TCP/Unix streams of requests into a warm shared session,
//!   bounded admission with backpressure, a byte-budgeted cache, and the
//!   unified `EvalError`/`StatusCode` wire status contract (`lego_serve`
//!   server and `serve_client` load-gen binaries);
//! * [`noc`] — butterfly and wormhole-mesh NoC models with
//!   `Transfer`-returning latency queries (broadcast, scatter, halo);
//! * [`sim`] — the performance/energy simulator (multi-cluster designs pay
//!   modeled L2-mesh latency, not just energy);
//! * [`mapper`] — per-layer dataflow search;
//! * [`mapspace`] — equality-saturation mapping search: a hash-consed
//!   e-graph over loop-nest mapping terms, dataflow/tiling/fusion rewrite
//!   rules saturated under a node budget, and a minimum-EDP extractor
//!   priced through a warm `EvalSession`;
//! * [`explorer`] — parallel hardware design-space exploration: grid /
//!   random / (μ+λ) evolutionary search over array shape × L2 cluster
//!   grid × buffer × bandwidth × dataflow set × tiling, under hard
//!   area/power feasibility budgets, sharing a memoized evaluation
//!   cache and accumulating a (latency, energy, area) Pareto frontier —
//!   shardable across processes/hosts (`DesignSpace::shard` partitions
//!   the space deterministically, `Snapshot` checkpoints a shard's
//!   frontier + cache to a file, and merging is a lossless union);
//! * [`sparse`] — Sparseloop-style sparsity modeling: density models
//!   (uniform, N:M structured, masked attention), compressed formats
//!   (bitmask / RLE / CSR) with storage and decode costs, and the
//!   gating/skipping acceleration features the cost stack prices;
//! * [`workloads`] — the ten-model NN zoo of the paper's evaluation,
//!   plus pruned/masked sparse variants (ResNet50 @ 2:4, BERT @ 90 %
//!   weight sparsity, causal-mask GPT-2 prefill);
//! * [`baselines`] — Gemmini / AutoSA / TensorLib / SODA / DSAGen models;
//! * [`core`] — the [`Lego`](core::Lego) builder tying it all together.
//!
//! # Quickstart: evaluate a workload on a configuration
//!
//! Everything that prices a design goes through one API: build an
//! `EvalRequest`, hand it to an `EvalSession`, read the `EvalReport`.
//! The session owns the cost model, the memoized evaluation cache, and
//! the worker pool; requests are serializable, so the same bytes evaluate
//! identically on any host.
//!
//! ```
//! use lego::eval::{EvalRequest, EvalSession};
//! use lego::sim::HwConfig;
//!
//! let session = EvalSession::new();
//! let request = EvalRequest::new(
//!     lego::workloads::zoo::lenet(),
//!     HwConfig::lego_256(),
//! );
//! let report = session.evaluate(&request);
//! println!(
//!     "{:.0} GOP/s at {:.0} GOPS/W, EDP {:.3e}",
//!     report.model.gops, report.model.gops_per_watt, report.cost.edp(),
//! );
//!
//! // Requests round-trip byte-identically through the versioned codec —
//! // the transport contract of the multi-host evaluation workflow. A
//! // fresh session reproduces the report bit-for-bit (its provenance
//! // records cache warmth, so cold compares against cold).
//! let bytes = request.encode();
//! let decoded = EvalRequest::decode(&bytes).unwrap();
//! assert_eq!(decoded.encode(), bytes);
//! assert_eq!(EvalSession::new().evaluate(&decoded), report);
//! ```
//!
//! # Serving workflow
//!
//! The same bytes can be priced without sharing a process: [`serve`]
//! keeps an `EvalSession` warm behind framed TCP and Unix-socket
//! streams. A request travels as a checksummed frame; the reply is a
//! `status u16 | body` payload where OK carries the encoded report —
//! byte-identical to an offline `EvalSession::new()` evaluation, no
//! matter how warm the server is — and every failure (malformed bytes,
//! invalid hardware, full queue, oversized frame) is a typed
//! [`StatusCode`](eval::StatusCode) the client receives as
//! [`EvalError::Remote`](eval::EvalError), never a dropped connection.
//!
//! ```
//! use lego::eval::{EvalRequest, EvalSession};
//! use lego::serve::{Client, Server, ServerConfig};
//! use lego::sim::HwConfig;
//!
//! let server = Server::new(ServerConfig::default());
//! let addr = server.listen_tcp("127.0.0.1:0").unwrap();
//!
//! let request = EvalRequest::builder(
//!     lego::workloads::zoo::lenet(),
//!     HwConfig::lego_256(),
//! )
//! .build()
//! .unwrap();
//! let mut client = Client::connect_tcp(addr).unwrap();
//! let served = client.evaluate_bytes(&request).unwrap();
//! assert_eq!(served, EvalSession::new().evaluate(&request).encode());
//! server.shutdown();
//! ```
//!
//! Out of process, the `lego_serve` binary serves the same protocol
//! (`lego_serve --tcp 127.0.0.1:7878 --cache-budget 16000000`) and
//! `serve_client` generates deterministic mixed load against it — see
//! `examples/serve_roundtrip.rs` for the full tour, including
//! backpressure and the status discipline.
//!
//! # Observability
//!
//! Attach an [`obs`] handle to see where an evaluation spends its work —
//! per-phase spans, cache warmth, mapping counts — without changing any
//! result. `Obs::deterministic()` never reads the clock, so its rendered
//! summary is byte-identical across runs (CI diffs it);
//! `Obs::wall_clock()` records real durations for perf hunts. The
//! `perf_bench` binary runs canonical workloads this way and writes the
//! `BENCH_eval.json` trajectory.
//!
//! ```
//! use lego::eval::{EvalRequest, EvalSession};
//! use lego::obs::Obs;
//! use lego::sim::HwConfig;
//!
//! let obs = Obs::deterministic();
//! let session = EvalSession::new().with_obs(obs.clone());
//! let request = EvalRequest::new(
//!     lego::workloads::zoo::lenet(),
//!     HwConfig::lego_256(),
//! );
//! session.evaluate(&request);
//! let summary = obs.summary();
//! assert_eq!(summary.counter("eval.requests"), 1);
//! assert!(summary.spans.contains_key("eval/mapping_search"));
//! ```
//!
//! # Tracing & profiling workflow
//!
//! When the summary says *where* work went but not *when*, capture a
//! trace. `Obs::wall_clock().traced(n)` attaches a bounded ring buffer of
//! typed events (span enter/exit, counter deltas) to the recorder; every
//! span is stamped with the `RequestId` the session minted for its
//! evaluation, so concurrent requests untangle on the timeline.
//!
//! 1. **Capture.** Attach a traced handle and evaluate:
//!    `eval_report --wallclock --trace-out trace.json --folded-out
//!    stacks.txt`, or in code: `Obs::wall_clock().traced(65536)` →
//!    `obs.trace_snapshot()`. The ring is bounded — a run that overflows
//!    it drops the *oldest* events and the exporters still emit a
//!    well-formed trace (only matched enter/exit pairs are written).
//! 2. **Look at the timeline.** The Chrome trace-event JSON
//!    (`chrome_trace_json()`) loads in [Perfetto](https://ui.perfetto.dev)
//!    or `chrome://tracing`: `eval/evaluate` parents
//!    `eval/{context_build,mapping_search,aggregate}`, explorer runs add
//!    `explore/shard/strategy`, and counter tracks plot cache warmth over
//!    time. Click any span to read its `request_id`.
//! 3. **Find the hot stack.** `folded_stacks()` emits `outer;inner ns`
//!    lines for flamegraph tools (inferno, `flamegraph.pl`, speedscope) —
//!    self time per stack, children subtracted.
//! 4. **Read the percentiles.** Summaries carry log-bucketed p50/p90/p99
//!    per span and per recorded value (`SpanStat::p99_ns`), so a long
//!    tail is visible even when the mean looks fine. Deterministic mode
//!    records the same bucket *counts* but zeroes all wall values — the
//!    rendered summary stays byte-identical across runs.
//! 5. **Gate the regression.** `perf_bench diff before.json after.json`
//!    compares two bench documents with per-metric tolerances (default
//!    1.25×; `--tolerance-for explore_wall=2.0` overrides one series) and
//!    exits nonzero when a wall metric grew — or a throughput shrank —
//!    past tolerance, or a metric vanished or changed unit. CI runs it
//!    against the committed `BENCH_eval_wall.json` with a generous 2×
//!    threshold; `perf_bench record` appends each run (mode, iterations,
//!    full row set) to the append-only `BENCH_trajectory.jsonl`.
//!
//! ```
//! use lego::eval::{EvalRequest, EvalSession};
//! use lego::obs::Obs;
//! use lego::sim::HwConfig;
//!
//! // Deterministic here so the doctest is stable; use wall_clock() to
//! // profile for real.
//! let obs = Obs::deterministic().traced(4096);
//! let session = EvalSession::new().with_obs(obs.clone());
//! let request = EvalRequest::new(
//!     lego::workloads::zoo::lenet(),
//!     HwConfig::lego_256(),
//! );
//! session.evaluate(&request);
//!
//! let snapshot = obs.trace_snapshot().unwrap();
//! let trace = snapshot.chrome_trace_json();       // -> Perfetto
//! let stacks = snapshot.folded_stacks();          // -> flamegraph
//! assert!(trace.contains("\"name\": \"eval/mapping_search\""));
//! assert!(trace.contains("\"request_id\": 1"));
//! assert!(stacks.contains("eval/evaluate;eval/mapping_search"));
//!
//! // The session's cache gauges price what stayed resident.
//! let gauges = session.cache().gauges();
//! assert!(gauges.entries > 0 && gauges.resident_bytes > 0);
//! ```
//!
//! # Generating hardware
//!
//! The generator half: describe a workload relation-centrically, pick a
//! spatial dataflow, and emit a verified design.
//!
//! ```
//! use lego::core::Lego;
//! use lego::ir::kernels::{self, dataflows};
//!
//! // Generate the 2×2 systolic GEMM array of the paper's Figure 3 and
//! // verify it against the reference loop nest.
//! let gemm = kernels::gemm(8, 4, 4);
//! let design = Lego::new(gemm.clone())
//!     .dataflow(dataflows::gemm_kj(&gemm, 2))
//!     .generate()
//!     .unwrap();
//!
//! use lego::ir::{tensor::reference_execute, TensorData};
//! let x = TensorData::from_fn(&[8, 4], |i| i as i64 % 5);
//! let w = TensorData::from_fn(&[4, 4], |i| i as i64 % 3);
//! assert_eq!(
//!     design.simulate(0, &[&x, &w]).output,
//!     reference_execute(&gemm, &[&x, &w]),
//! );
//! ```
//!
//! # Exploring the hardware design space
//!
//! Where the quickstart evaluates one configuration, the explorer
//! searches the space — every strategy routes its genome evaluations
//! through one shared `EvalSession`, so overlapping searches pay for each
//! layer simulation once:
//!
//! ```
//! use lego::explorer::{DesignSpace, ExploreOptions};
//! use lego::core::Lego;
//!
//! let model = lego::workloads::zoo::lenet();
//! let result = Lego::explore(
//!     &model,
//!     &DesignSpace::tiny(),
//!     42,
//!     &ExploreOptions { budget_per_strategy: 16, ..Default::default() },
//! );
//! let best = result.best_by_edp().unwrap();
//! println!("best config: {} (EDP {:.3e})", best.genome, best.objectives.edp());
//! assert!(result.frontier.len() >= 1);
//! ```
//!
//! # Mapping-search workflow
//!
//! The mapper's enumeration picks each layer's best mapping from the
//! hardware's dataflow menu independently. The [`mapspace`] crate searches
//! a *rewrite space* instead: seed an e-graph with the enumerated
//! assignment, saturate loop-interchange / tile-split / spatial↔temporal /
//! fusion-regrouping rules, and extract the minimum-EDP assignment by
//! pricing candidates through the same warm `EvalSession` (so nothing is
//! simulated twice). The extracted EDP can never lose to enumeration —
//! the extractor's descent starts there — and strictly wins where the
//! menu is restrictive (e.g. depthwise layers on hardware without the
//! `OHOW` template). The outcome folds back into the explorer:
//! `suggest_genome` turns the extracted dataflow set and modal tile cap
//! into a warm-start genome for the evolutionary search, closing the
//! enumerate → saturate → extract → explore loop.
//!
//! ```
//! use lego::eval::EvalSession;
//! use lego::explorer::Genome;
//! use lego::mapper::map_model_rewrite;
//! use lego::model::TechModel;
//! use lego::sim::HwConfig;
//!
//! let model = lego::workloads::zoo::lenet();
//! let session = EvalSession::new();
//! let out = map_model_rewrite(
//!     &model,
//!     HwConfig::lego_icoc_1k(),
//!     TechModel::default(),
//!     None,
//!     &session,
//! );
//! assert!(out.rewrite_edp <= out.enumerated_edp);
//! println!("{}", out.render()); // per-layer choices + EDP summary
//!
//! // Fold the outcome back into the explorer's design space.
//! let warm = out.suggest_genome(&Genome::lego_256_baseline());
//! assert!(warm.dataflows.to_vec().len() >= 1);
//! ```
//!
//! The `mapspace_search` bench binary prints the enumerated-vs-rewrite
//! EDP table for the dense zoo (byte-identical across runs; CI diffs two
//! invocations), and `examples/rewrite_mapping.rs` walks the loop on
//! MobileNetV2.
//!
//! # Performance workflow
//!
//! The evaluation hot path is benchmarked, not guessed at. The contract
//! every performance PR follows:
//!
//! 1. **Two modes, one harness.** `perf_bench --mode deterministic` never
//!    reads the clock: every wall metric is 0, every counter is exact, and
//!    the output (`BENCH_eval.json`) is byte-identical across runs — CI
//!    diffs it run-vs-run, and `crates/bench/tests/golden_bytes.rs` pins
//!    it (plus the DSE tables, the `eval_report` request/report bytes,
//!    and a `dse_shard` snapshot) to committed goldens. `--mode wallclock`
//!    measures the same surfaces for real and writes the same schema with
//!    populated wall/throughput rows.
//! 2. **Minimum over iterations.** In wallclock mode each surface runs
//!    `WALL_ITERS` times and reports the per-metric minimum — the best
//!    observed run is the closest estimate of the code's intrinsic cost
//!    on a noisy machine; means conflate scheduler noise with the code
//!    under test. Deterministic mode runs each surface exactly once, so
//!    iteration count can never perturb the pinned counters.
//! 3. **Trajectory files.** `BENCH_eval.json` (deterministic counters:
//!    cache misses, layers priced, evals run) is the *semantic*
//!    trajectory; `BENCH_eval_wall.json` is the *wallclock* trajectory,
//!    with `BENCH_eval_wall_before.json` holding the same-machine
//!    measurement taken at the parent commit. Speedup claims are the
//!    ratio of those two files — same harness, same protocol, same
//!    machine — never numbers quoted from different environments.
//! 4. **Every perf PR commits before and after.** Run
//!    `perf_bench --mode wallclock` at the parent commit and at the tip,
//!    commit both files, and state the per-metric ratios in the PR. A
//!    perf change that cannot show its trajectory did not happen; a perf
//!    change that moves any golden byte is a semantic change wearing a
//!    perf costume.
//! 5. **Micro-benches localize regressions.** `cargo bench -p lego-bench`
//!    (`benches/hotpath.rs`) times the stages end-to-end numbers are made
//!    of — cache hit/absorb, tiled DRAM traffic, mapping search with and
//!    without observability, codec round-trips — so a wallclock
//!    regression can be attributed without re-profiling the harness.
//!
//! # Deprecation policy
//!
//! The pre-session evaluation entry points — `sim::simulate_layer`,
//! `sim::simulate_layer_tiled`, `sim::best_mapping`,
//! `sim::best_mapping_tiled`, `sim::perf::simulate_model`,
//! `mapper::map_model`, `mapper::map_model_with` — are `#[deprecated]`
//! shims over the same internals a session runs (`simulate_layer_ctx` /
//! `best_mapping_ctx` / `map_model_ctx` remain the supported low-level
//! context API). The shims stay source- and behavior-compatible (each is
//! pinned byte-identical to its `_ctx` equivalent by tests) for external
//! callers, but workspace CI compiles with `-D deprecated`, so no code in
//! this repository may call them outside the `#[allow(deprecated)]` shim
//! tests. They will be removed once the multi-host driver lands and
//! nothing external depends on them.

pub use lego_backend as backend;
pub use lego_baselines as baselines;
pub use lego_core as core;
pub use lego_eval as eval;
pub use lego_explorer as explorer;
pub use lego_frontend as frontend;
pub use lego_graph as graph;
pub use lego_ir as ir;
pub use lego_linalg as linalg;
pub use lego_lp as lp;
pub use lego_mapper as mapper;
pub use lego_mapspace as mapspace;
pub use lego_model as model;
pub use lego_noc as noc;
pub use lego_obs as obs;
pub use lego_rtl as rtl;
pub use lego_serve as serve;
pub use lego_sim as sim;
pub use lego_sparse as sparse;
pub use lego_workloads as workloads;
