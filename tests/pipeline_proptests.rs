//! Property-based end-to-end tests: random workload shapes, tilings,
//! parallelizations and control vectors must always generate designs that
//! compute bit-exact results under every fused configuration.

use lego::core::Lego;
use lego::ir::kernels;
use lego::ir::{tensor::reference_execute, DataflowBuilder, TensorData};
use proptest::prelude::*;

fn divisors_upto(n: i64, cap: i64) -> Vec<i64> {
    (1..=cap.min(n)).filter(|d| n % d == 0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_gemm_designs_are_correct(
        mi in 1usize..3,
        ni in 1usize..3,
        ki in 1usize..3,
        pi in 0usize..4,
        pj in 0usize..4,
        systolic in proptest::bool::ANY,
    ) {
        let dims = [4i64, 6, 8];
        let (m, n, k) = (dims[mi], dims[ni], dims[ki]);
        let g = kernels::gemm(m, n, k);
        // Choose parallel factors among the divisors of the dims.
        let pis = divisors_upto(m, 4);
        let pjs = divisors_upto(n, 4);
        let p_i = pis[pi % pis.len()];
        let p_j = pjs[pj % pjs.len()];
        prop_assume!(p_i * p_j > 1);
        let c = if systolic { vec![1, 1] } else { vec![0, 0] };
        let df = DataflowBuilder::new(&g)
            .par("i", p_i)
            .par("j", p_j)
            .control(c)
            .build("rand")
            .unwrap();
        let design = Lego::new(g.clone()).dataflow(df).generate().unwrap();
        design.dag.check().unwrap();

        let x = TensorData::from_fn(&[m, k], |i| (i as i64 % 11) - 5);
        let w = TensorData::from_fn(&[k, n], |i| (i as i64 % 7) - 3);
        let out = design.simulate(0, &[&x, &w]);
        prop_assert_eq!(out.output, reference_execute(&g, &[&x, &w]));
    }

    #[test]
    fn random_conv_designs_are_correct(
        ic in 1i64..4,
        oc in 1i64..4,
        par_choice in 0usize..3,
    ) {
        let c = kernels::conv2d(1, ic, oc, 4, 4, 3, 3, 1);
        let df = match par_choice {
            0 => DataflowBuilder::new(&c).par("oh", 2).par("ow", 2).build("ohow"),
            1 => DataflowBuilder::new(&c)
                .par("oh", 4)
                .par("ow", 2)
                .build("oh4ow2"),
            _ => DataflowBuilder::new(&c).par("kh", 3).par("oh", 2).build("khoh"),
        }
        .unwrap();
        let design = Lego::new(c.clone()).dataflow(df).generate().unwrap();
        let x = TensorData::from_fn(&c.tensor_shape("X"), |i| (i as i64 % 5) - 2);
        let w = TensorData::from_fn(&c.tensor_shape("W"), |i| (i as i64 % 3) - 1);
        let out = design.simulate(0, &[&x, &w]);
        prop_assert_eq!(out.output, reference_execute(&c, &[&x, &w]));
    }

    #[test]
    fn random_loop_orders_preserve_correctness(
        order in proptest::sample::select(vec![
            ["i", "j", "k"], ["i", "k", "j"], ["j", "i", "k"],
            ["j", "k", "i"], ["k", "i", "j"], ["k", "j", "i"],
        ]),
    ) {
        // The same spatial layout with every temporal loop order.
        let g = kernels::gemm(4, 4, 4);
        let mut b = DataflowBuilder::new(&g).par("i", 2).par("j", 2);
        for d in order {
            b = b.seq(d, if d == "i" || d == "j" { 2 } else { 4 });
        }
        let df = b.build("perm").unwrap();
        prop_assume!(df.verify_bijective(&g));
        let design = Lego::new(g.clone()).dataflow(df).generate().unwrap();
        let x = TensorData::from_fn(&[4, 4], |i| i as i64 - 8);
        let w = TensorData::from_fn(&[4, 4], |i| 2 * (i as i64 % 4) - 3);
        let out = design.simulate(0, &[&x, &w]);
        prop_assert_eq!(out.output, reference_execute(&g, &[&x, &w]));
    }
}
