//! Smoke test: every example in `examples/` compiles.
//!
//! `cargo test` already builds all workspace examples as part of its
//! default target selection, so reaching this test at all proves they
//! compile with the current API. The explicit build below additionally
//! fails loudly (rather than silently skipping) if an example is ever
//! excluded from the default build, and the listing pins the expected set.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "attention_accelerator",
    "end_to_end_nn",
    "explore_design_space",
    "fused_accelerator",
    "quickstart",
    "rewrite_mapping",
    "serve_roundtrip",
    "sharded_exploration",
    "trace_eval",
];

#[test]
fn all_examples_are_present() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ exists")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            (path.extension()? == "rs").then(|| path.file_stem()?.to_str().map(String::from))?
        })
        .collect();
    found.sort();
    assert_eq!(found, EXAMPLES, "examples/ drifted from the pinned list");
}

#[test]
fn all_examples_compile() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo)
        .args(["build", "--examples", "--offline"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("cargo runs");
    assert!(status.success(), "cargo build --examples failed");
}
