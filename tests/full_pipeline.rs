//! Cross-crate integration: every kernel family × dataflow × array size is
//! generated end-to-end and verified cycle-accurately against the reference
//! loop nest — the strongest correctness statement this repository makes.

use lego::core::Lego;
use lego::ir::kernels::{self, dataflows};
use lego::ir::{tensor::reference_execute, DataflowBuilder, TensorData, Workload};
use lego::model::TechModel;

fn verify(workload: &Workload, dfs: Vec<lego::ir::Dataflow>) {
    let mut builder = Lego::new(workload.clone());
    let n_df = dfs.len();
    for df in dfs {
        builder = builder.dataflow(df);
    }
    let design = builder.generate().expect("generation succeeds");
    design.dag.check().expect("valid DAG");

    let inputs: Vec<TensorData> = workload
        .inputs()
        .enumerate()
        .map(|(i, a)| {
            let shape = workload.tensor_shape(&a.tensor);
            TensorData::from_fn(&shape, |k| ((k * 13 + i * 7 + 3) % 17) as i64 - 8)
        })
        .collect();
    let refs: Vec<&TensorData> = inputs.iter().collect();
    let expect = reference_execute(workload, &refs);
    for df in 0..n_df {
        let out = design.simulate(df, &refs);
        assert_eq!(out.output, expect, "{} df {df} diverged", workload.name);
    }

    // Cost and Verilog must also be producible for every design.
    let cost = design.cost(&TechModel::default());
    assert!(cost.area_um2 > 0.0);
    let v = design.verilog("t");
    assert!(v.contains("endmodule"));
}

#[test]
fn gemm_all_dataflows_2x2_and_4x4() {
    for p in [2, 4] {
        let g = kernels::gemm(2 * p, 2 * p, 2 * p);
        verify(&g, vec![dataflows::gemm_ij(&g, p)]);
        verify(&g, vec![dataflows::gemm_ik(&g, p)]);
        verify(&g, vec![dataflows::gemm_kj(&g, p)]);
    }
}

#[test]
fn gemm_fused_mj() {
    let g = kernels::gemm(8, 8, 8);
    verify(
        &g,
        vec![dataflows::gemm_ij(&g, 2), dataflows::gemm_kj(&g, 2)],
    );
}

#[test]
fn conv_all_dataflows() {
    let c = kernels::conv2d(1, 4, 4, 4, 4, 3, 3, 1);
    verify(&c, vec![dataflows::conv_icoc(&c, 2)]);
    verify(&c, vec![dataflows::conv_ohow(&c, 2)]);
    verify(&c, vec![dataflows::conv_khoh(&c, 3, 2)]);
}

#[test]
fn conv_fused_mnicoc() {
    let c = kernels::conv2d(1, 4, 4, 4, 4, 3, 3, 1);
    verify(
        &c,
        vec![dataflows::conv_icoc(&c, 2), dataflows::conv_ohow(&c, 2)],
    );
}

#[test]
fn strided_and_depthwise_convs() {
    let c = kernels::conv2d(1, 2, 4, 3, 3, 3, 3, 2);
    verify(&c, vec![dataflows::conv_ohow(&c, 3)]);
    let dw = kernels::depthwise_conv2d(1, 4, 4, 4, 3, 3, 1);
    let df = DataflowBuilder::new(&dw)
        .par("oh", 2)
        .par("ow", 2)
        .build("DW-OHOW")
        .unwrap();
    verify(&dw, vec![df]);
}

#[test]
fn mttkrp_dataflows() {
    let m = kernels::mttkrp(4, 4, 4, 4);
    verify(&m, vec![dataflows::mttkrp_ij(&m, 2)]);
    verify(&m, vec![dataflows::mttkrp_kj(&m, 2)]);
    verify(
        &m,
        vec![dataflows::mttkrp_ij(&m, 2), dataflows::mttkrp_kj(&m, 2)],
    );
}

#[test]
fn attention_fused() {
    let a = kernels::attention_scores(8, 8, 4);
    let qp = dataflows::par2(&a, "q", 2, "p", 2, "QP").unwrap();
    let pd = dataflows::par2(&a, "p", 2, "d", 2, "PD").unwrap();
    verify(&a, vec![qp, pd]);
}

#[test]
fn systolic_with_paper_exact_tiling() {
    // The paper's Figure 3 dataflow, including the two-level i tiling.
    let g = kernels::gemm(8, 4, 4);
    let df = DataflowBuilder::new(&g)
        .par("k", 2)
        .par("j", 2)
        .seq("i", 2)
        .seq("j", 2)
        .seq("k", 2)
        .seq("i", 4)
        .control(vec![1, 1])
        .build("fig3")
        .unwrap();
    verify(&g, vec![df]);
}

#[test]
fn rectangular_arrays() {
    let g = kernels::gemm(8, 6, 4);
    let df = DataflowBuilder::new(&g)
        .par("i", 4)
        .par("j", 3)
        .build("rect")
        .unwrap();
    verify(&g, vec![df]);
}

#[test]
fn asymmetric_control_flow() {
    // Systolic along one dimension only: c = [1, 0].
    let g = kernels::gemm(8, 4, 4);
    let df = DataflowBuilder::new(&g)
        .par("k", 2)
        .par("j", 2)
        .control(vec![1, 0])
        .build("half-systolic")
        .unwrap();
    verify(&g, vec![df]);
}

#[test]
fn bitfusion_mixed_precision_gemm() {
    // Paper §II: the user-defined FU example Y += (A·B) << S.
    let g = kernels::bitfusion_gemm(4, 4, 4);
    verify(&g, vec![dataflows::gemm_ij(&g, 2)]);
}

#[test]
fn max_pooling_layer() {
    let p = kernels::max_pool2d(1, 4, 4, 4, 2, 2, 2);
    let df = DataflowBuilder::new(&p)
        .par("oh", 2)
        .par("ow", 2)
        .build("POOL-OHOW")
        .unwrap();
    verify(&p, vec![df]);
}
