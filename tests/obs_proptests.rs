//! Property-based observability invariants, end-to-end through the facade:
//!
//! 1. Instrumentation never perturbs results — an `Obs::disabled()` session
//!    and a fully instrumented session produce byte-identical `EvalReport`
//!    encodings for the same request.
//! 2. Deterministic-mode summaries are byte-identical across runs — the
//!    property the CI bench-smoke job pins for `perf_bench`.

use lego::eval::{EvalRequest, EvalSession};
use lego::obs::Obs;
use lego::sim::HwConfig;
use proptest::prelude::*;

fn model_by_index(i: usize) -> lego::workloads::Model {
    match i % 3 {
        0 => lego::workloads::zoo::lenet(),
        1 => lego::workloads::zoo::mobilenet_v2(),
        _ => lego::workloads::zoo::resnet50_2to4(),
    }
}

fn hw_by_index(i: usize) -> HwConfig {
    match i % 2 {
        0 => HwConfig::lego_256(),
        _ => HwConfig::lego_icoc_1k(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn instrumentation_never_changes_report_bytes(
        model_i in 0usize..3,
        hw_i in 0usize..2,
    ) {
        let request = EvalRequest::new(model_by_index(model_i), hw_by_index(hw_i));

        let plain = EvalSession::new()
            .with_obs(Obs::disabled())
            .evaluate(&request);
        let observed = EvalSession::new()
            .with_obs(Obs::deterministic())
            .evaluate(&request);
        let timed = EvalSession::new()
            .with_obs(Obs::wall_clock())
            .evaluate(&request);

        prop_assert_eq!(observed.encode(), plain.encode());
        prop_assert_eq!(timed.encode(), plain.encode());
    }

    #[test]
    fn deterministic_summaries_are_byte_identical_across_runs(
        model_i in 0usize..3,
        hw_i in 0usize..2,
    ) {
        let request = EvalRequest::new(model_by_index(model_i), hw_by_index(hw_i));

        let render = || {
            let obs = Obs::deterministic();
            EvalSession::new().with_obs(obs.clone()).evaluate(&request);
            obs.summary().render()
        };
        let first = render();
        let second = render();
        prop_assert!(!first.is_empty());
        prop_assert_eq!(first, second);
    }
}
