//! Golden equivalence: `EvalSession::evaluate` is byte-identical to the
//! legacy `_ctx` evaluation path on the model zoo, dense and sparse.
//!
//! The session is a *packaging* of `best_mapping_ctx` + `aggregate` — not
//! a reimplementation — so every per-layer `LayerPerf` and the aggregated
//! `ModelPerf` must compare exactly equal (f64 bit equality via derived
//! `PartialEq`), on every zoo model, on both reference configurations,
//! with and without sparse datapaths and tile caps. This is what lets the
//! deprecated shims retire without any table or test shifting by a bit.

use lego::eval::{EvalRequest, EvalSession};
use lego::mapper::map_model_ctx;
use lego::model::{CostContext, SparseAccel, SparseHw, TechModel};
use lego::sim::HwConfig;
use lego::workloads::{zoo, Model};

fn dense_zoo() -> Vec<Model> {
    vec![
        zoo::lenet(),
        zoo::mobilenet_v2(),
        zoo::resnet50(),
        zoo::bert_base(),
        zoo::gpt2_decode(),
    ]
}

fn assert_matches_legacy(
    session: &EvalSession,
    model: &Model,
    hw: &HwConfig,
    accel: SparseAccel,
    tile_cap: Option<i64>,
) {
    let tech = TechModel::default();
    let report = session.evaluate(
        &EvalRequest::new(model.clone(), hw.clone())
            .with_sparse(SparseHw::with_accel(accel))
            .with_tile_cap(tile_cap),
    );
    let ctx = CostContext::new(hw.clone(), tech).with_sparse(SparseHw::with_accel(accel));
    let legacy = map_model_ctx(model, &ctx, tile_cap);
    assert_eq!(
        report.model, legacy.perf,
        "{} on {:?} ({accel:?}, cap {tile_cap:?}): ModelPerf must be byte-identical",
        model.name, hw.array,
    );
    assert_eq!(report.per_layer.len(), legacy.layers.len());
    for (got, want) in report.per_layer.iter().zip(&legacy.layers) {
        assert_eq!(got.name, want.name);
        assert_eq!(got.count, want.count);
        assert_eq!(
            got.perf, want.perf,
            "{}/{}: LayerPerf must be byte-identical",
            model.name, want.name,
        );
    }
}

#[test]
fn session_matches_legacy_ctx_on_the_dense_zoo() {
    let session = EvalSession::new();
    for model in dense_zoo() {
        for hw in [HwConfig::lego_256(), HwConfig::lego_icoc_1k()] {
            assert_matches_legacy(&session, &model, &hw, SparseAccel::None, None);
        }
    }
}

#[test]
fn session_matches_legacy_ctx_on_the_sparse_zoo() {
    let session = EvalSession::new();
    for model in zoo::sparse_models() {
        for accel in SparseAccel::ALL {
            assert_matches_legacy(&session, &model, &HwConfig::lego_256(), accel, None);
        }
    }
}

#[test]
fn session_matches_legacy_ctx_under_tile_caps_and_clusters() {
    let session = EvalSession::new();
    let mut clustered = HwConfig::lego_256();
    clustered.clusters = (2, 2);
    for model in [zoo::mobilenet_v2(), zoo::resnet50_2to4()] {
        for hw in [HwConfig::lego_256(), clustered.clone()] {
            for tile_cap in [None, Some(32), Some(64)] {
                assert_matches_legacy(&session, &model, &hw, SparseAccel::Skipping, tile_cap);
            }
        }
    }
}

#[test]
fn session_cost_summary_matches_the_explorer_arithmetic() {
    // The explorer's DesignPoint objectives historically came from its own
    // roll-up; they now come from CostSummary. Pin the formulas.
    let tech = TechModel::default();
    let hw = HwConfig::lego_256();
    let model = zoo::resnet50();
    let report = EvalSession::new().evaluate(&EvalRequest::new(model.clone(), hw.clone()));
    let ctx = CostContext::new(hw.clone(), tech);
    let legacy = map_model_ctx(&model, &ctx, None);
    let latency = legacy.perf.cycles as f64;
    let time_s = latency / (tech.freq_ghz * 1e9);
    let energy_pj = legacy.perf.watts * time_s * 1e12;
    let banks = (hw.array.0 + hw.array.1).max(1) as u64;
    assert_eq!(report.cost.objectives.latency_cycles, latency);
    assert_eq!(report.cost.objectives.energy_pj, energy_pj);
    assert_eq!(report.cost.objectives.area_um2, ctx.area(banks).total_um2());
    assert_eq!(report.cost.peak_power_mw, ctx.peak_power_mw());
    assert_eq!(report.cost.score, report.cost.edp(), "default objective");
}
