//! Shape checks for the paper's headline claims: these assert *direction
//! and rough magnitude*, not the authors' absolute testbed numbers
//! (see EXPERIMENTS.md for the full side-by-side).

use lego::baselines::{per_fu_control_cost, shared_control_cost, simulate_model_gemmini};
use lego::eval::{EvalRequest, EvalSession};
use lego::ir::kernels::{self, dataflows};
use lego::model::TechModel;
use lego::sim::{HwConfig, ModelPerf};
use lego::workloads::{zoo, Model};

/// LEGO-side numbers through the canonical session API.
fn simulate_model(m: &Model, hw: &HwConfig, tech: &TechModel) -> ModelPerf {
    EvalSession::new()
        .evaluate(&EvalRequest::new(m.clone(), hw.clone()).with_tech(*tech))
        .model
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[test]
fn lego_beats_gemmini_by_2x_geomean() {
    // Paper Figure 11: 3.2× average speedup, 2.4× energy savings.
    let tech = TechModel::default();
    let hw = HwConfig::lego_256();
    let mut speedups = Vec::new();
    let mut effs = Vec::new();
    for m in zoo::figure11_models() {
        let g = simulate_model_gemmini(&m, &tech);
        let l = simulate_model(&m, &hw, &tech);
        speedups.push(l.gops / g.gops);
        effs.push(l.gops_per_watt / g.gops_per_watt);
    }
    let sp = geomean(&speedups);
    let ef = geomean(&effs);
    assert!(sp > 2.0, "geomean speedup {sp:.2} (paper 3.2x)");
    assert!(ef > 1.5, "geomean efficiency {ef:.2} (paper 2.4x)");
}

#[test]
fn ppu_overhead_within_paper_band() {
    // Paper Figure 12b: 0.5%..7.2% per model; we allow a little slack.
    let tech = TechModel::default();
    let hw = HwConfig::lego_256();
    for m in zoo::figure11_models() {
        let p = simulate_model(&m, &hw, &tech);
        assert!(
            p.ppu_fraction < 0.10,
            "{}: PPU fraction {:.3}",
            m.name,
            p.ppu_fraction
        );
    }
}

#[test]
fn generative_models_match_table2_shape() {
    // Paper Table II: DDPM > 80% utilization, LLaMA-7B bs=1 in the low
    // single digits, batching recovers an order of magnitude.
    let tech = TechModel::default();
    let hw = HwConfig::lego_icoc_1k();
    let ddpm = simulate_model(&zoo::ddpm(), &hw, &tech);
    assert!(ddpm.utilization > 0.6, "DDPM util {:.2}", ddpm.utilization);
    let sd = simulate_model(&zoo::stable_diffusion(), &hw, &tech);
    assert!(sd.utilization > 0.5, "SD util {:.2}", sd.utilization);
    let l1 = simulate_model(&zoo::llama7b_decode(1), &hw, &tech);
    assert!(
        l1.utilization < 0.10,
        "LLaMA bs=1 util {:.3}",
        l1.utilization
    );
    let l32 = simulate_model(&zoo::llama7b_decode(32), &hw, &tech);
    assert!(
        l32.gops > 5.0 * l1.gops,
        "batching must pay: {} vs {}",
        l32.gops,
        l1.gops
    );
}

#[test]
fn backend_optimizations_never_hurt_and_help_fused_designs() {
    // Paper Figures 13/14: savings concentrate on designs with reduction
    // chains and fused dataflows.
    use lego::backend::{lower, optimize, BackendConfig, OptimizeOptions};
    use lego::frontend::{build_adg, FrontendConfig};
    use lego::model::dag_cost;

    let tech = TechModel::default();
    let conv = kernels::conv2d(1, 8, 8, 16, 16, 3, 3, 1);
    let adg = build_adg(
        &conv,
        &[dataflows::conv_icoc(&conv, 8)],
        &FrontendConfig::default(),
    )
    .unwrap();
    let mut base = lower(&adg, &BackendConfig::default());
    optimize(&mut base, &OptimizeOptions::baseline());
    let mut opt = lower(&adg, &BackendConfig::default());
    optimize(&mut opt, &OptimizeOptions::default());
    let cb = dag_cost(&base, &tech, 1.0);
    let co = dag_cost(&opt, &tech, 1.0);
    assert!(co.area_um2 < cb.area_um2, "ICOC design must shrink");
    assert!(co.total_mw() <= cb.total_mw());
}

#[test]
fn shared_control_is_several_times_lighter() {
    // Paper Table VIII / §III-D: per-FU control costs multiples in FF/LUT.
    let tech = TechModel::default();
    let gemm = kernels::gemm(64, 64, 64);
    let df = dataflows::gemm_ij(&gemm, 8);
    let lego = shared_control_cost(&gemm, std::slice::from_ref(&df), &tech);
    let autosa = per_fu_control_cost(&gemm, &[df], &tech);
    assert!(autosa.fpga.ff > 3.0 * lego.fpga.ff);
    assert!(autosa.fpga.lut > 3.0 * lego.fpga.lut);
}

#[test]
fn instruction_overhead_is_negligible() {
    // Paper §VI-B(e): instruction bandwidth < 1% of DRAM bandwidth.
    let tech = TechModel::default();
    let hw = HwConfig::lego_256();
    for m in [zoo::resnet50(), zoo::bert_base()] {
        let p = simulate_model(&m, &hw, &tech);
        assert!(
            p.instr_gbps < 0.01 * hw.dram_gbps,
            "{}: {}",
            m.name,
            p.instr_gbps
        );
    }
}
