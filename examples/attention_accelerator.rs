//! Generating an attention accelerator (paper §VI-B: score-stationary
//! attention fuses the Q·Kᵀ and P·V dataflows in one design).
//!
//! Run with: `cargo run --example attention_accelerator`

use lego::core::Lego;
use lego::ir::kernels::{self, dataflows};
use lego::ir::{tensor::reference_execute, TensorData};
use lego::model::TechModel;

fn main() {
    // Scores S[q,p] += Q[q,d] · K[p,d] for a 8-token window, d=4.
    let scores = kernels::attention_scores(8, 8, 4);

    // Fuse two spatial dataflows: q-p parallel (score-stationary) and
    // p-d parallel (value aggregation shape).
    let qp = dataflows::par2(&scores, "q", 4, "p", 4, "Attn-QP").unwrap();
    let pd = dataflows::par2(&scores, "p", 4, "d", 4, "Attn-PD").unwrap();
    let design = Lego::new(scores.clone())
        .dataflow(qp)
        .dataflow(pd)
        .generate()
        .unwrap();
    println!("{}", design.adg.summary());
    println!("{}", design.dag.summary());

    // Verify both configurations bit-exactly.
    let q = TensorData::from_fn(&[8, 4], |i| (i as i64 % 7) - 3);
    let k = TensorData::from_fn(&[8, 4], |i| (i as i64 % 5) - 2);
    let expect = reference_execute(&scores, &[&q, &k]);
    for df in 0..2 {
        assert_eq!(design.simulate(df, &[&q, &k]).output, expect);
    }
    println!("both attention dataflows verified against the reference");

    // Back-end report: what each optimization pass bought us.
    let r = &design.report;
    println!(
        "register bits: baseline {} -> final {}",
        r.baseline.register_bits, r.final_stats.register_bits
    );
    let cost = design.cost(&TechModel::default());
    println!(
        "cost @28nm: {:.0} um^2, {:.2} mW, FF {:.0} / LUT {:.0} / DSP {:.0}",
        cost.area_um2,
        cost.total_mw(),
        cost.fpga.ff,
        cost.fpga.lut,
        cost.fpga.dsp
    );
}
