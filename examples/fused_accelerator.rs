//! Fusing multiple spatial dataflows in one design (paper §IV-C, Table V).
//!
//! MobileNetV2's pointwise convolutions want channel parallelism (IC-OC)
//! while its depthwise layers want output-plane parallelism (OH-OW). This
//! example fuses both into one 4×4 array, verifies that the same silicon
//! runs both configurations correctly, and compares against the naive
//! mux-merge of the two standalone designs.
//!
//! Run with: `cargo run --example fused_accelerator`

use lego::backend::{lower, optimize, BackendConfig, OptimizeOptions};
use lego::baselines::naive_fusion_adg;
use lego::core::Lego;
use lego::frontend::{build_adg, FrontendConfig};
use lego::ir::kernels::{self, dataflows};
use lego::ir::{tensor::reference_execute, TensorData};
use lego::model::{dag_cost, TechModel};

fn main() {
    let conv = kernels::conv2d(1, 4, 4, 8, 8, 3, 3, 1);
    let icoc = dataflows::conv_icoc(&conv, 4);
    let ohow = dataflows::conv_ohow(&conv, 4);

    // Generate the fused design through the high-level API.
    let design = Lego::new(conv.clone())
        .dataflow(icoc.clone())
        .dataflow(ohow.clone())
        .generate()
        .unwrap();
    println!("{}", design.adg.summary());

    // Both configurations must compute correct results on the same wires.
    let x = TensorData::from_fn(&[1, 4, 10, 10], |i| (i as i64 % 9) - 4);
    let w = TensorData::from_fn(&[4, 4, 3, 3], |i| (i as i64 % 5) - 2);
    let expect = reference_execute(&conv, &[&x, &w]);
    for df in 0..2 {
        let out = design.simulate(df, &[&x, &w]);
        assert_eq!(out.output, expect, "dataflow {df} diverged");
        println!(
            "dataflow {df} verified: {} edge deliveries, {} port reads",
            out.stats.edge_deliveries, out.stats.port_reads
        );
    }

    // Compare the heuristic fusion against the naive mux-merge (Table V).
    let tech = TechModel::default();
    let naive = naive_fusion_adg(&conv, &[icoc, ohow]);
    let cost_of = |adg: &lego::frontend::Adg| {
        let mut dag = lower(adg, &BackendConfig::default());
        optimize(&mut dag, &OptimizeOptions::default());
        dag_cost(&dag, &tech, 1.0)
    };
    let fused_cost =
        cost_of(&build_adg(&conv, &design.adg.dataflows, &FrontendConfig::default()).unwrap());
    let naive_cost = cost_of(&naive);
    println!(
        "fused: {:.0} um^2 / {:.2} mW   naive merge: {:.0} um^2 / {:.2} mW",
        fused_cost.area_um2,
        fused_cost.total_mw(),
        naive_cost.area_um2,
        naive_cost.total_mw()
    );
    println!(
        "heuristic fusion saves {:.1}% power over naive merging (paper: up to 20%)",
        100.0 * (1.0 - fused_cost.total_mw() / naive_cost.total_mw())
    );
}
