//! Rewrite-based mapping search: enumerate → saturate → extract →
//! warm-start the explorer.
//!
//! The mapper's enumeration picks each layer's best mapping from the
//! hardware's dataflow menu independently. This example searches the
//! *rewrite space* instead: seed an e-graph with the enumerated
//! assignment, saturate the loop-interchange / tile-split /
//! spatial↔temporal / fusion-regrouping rules, and extract the
//! minimum-EDP assignment priced through the same warm `EvalSession`.
//! The rewrite search can never lose to enumeration (its descent starts
//! there) and strictly wins where the menu is restrictive — here
//! MobileNetV2 on `lego_icoc_1k`, whose menu lacks the depthwise-friendly
//! `OHOW` template.
//!
//! Run with: `cargo run --example rewrite_mapping`

use lego::eval::EvalSession;
use lego::explorer::{
    DesignSpace, Evaluator, EvolutionarySearch, Genome, ParetoFrontier, SearchStrategy,
};
use lego::mapper::map_model_rewrite;
use lego::model::TechModel;
use lego::sim::HwConfig;

fn main() {
    let model = lego::workloads::zoo::mobilenet_v2();
    let tech = TechModel::default();
    let session = EvalSession::new();

    // ── 1. Enumerate, saturate, extract ────────────────────────────────
    // One call runs the whole pipeline: the enumerated baseline prices
    // first (that EDP is `enumerated_edp`), then the e-graph saturates
    // the rewrite rules and the extractor descends to the cheapest
    // assignment it can price. Both share the session's EvalCache, so a
    // candidate the baseline already priced costs nothing to revisit.
    let hw = HwConfig::lego_icoc_1k();
    let out = map_model_rewrite(&model, hw, tech, None, &session);
    println!("{}", out.render());
    assert!(
        out.rewrite_edp <= out.enumerated_edp,
        "the rewrite search never loses to enumeration"
    );
    assert!(
        out.improved(),
        "on a menu without OHOW the rewrite search must strictly win"
    );
    println!(
        "\nsaturation: {} rounds, {} nodes, {} classes, {} unions ({} dedup hits)",
        out.stats.rounds,
        out.stats.nodes,
        out.stats.classes,
        out.stats.unions,
        out.stats.dedup_hits,
    );

    // ── 2. Fold the outcome back into the explorer ─────────────────────
    // `suggest_genome` turns the extracted dataflow set and modal tile
    // cap into a genome; warm-starting the evolutionary search with it
    // hands the ES the rewrite search's head start. The ES is elitist,
    // so its best can never be worse than the seed itself.
    let suggested = out.suggest_genome(&Genome::lego_256_baseline());
    println!("\nsuggested warm-start genome: {suggested}");

    let evaluator = Evaluator::new(&model, tech);
    let mut es = EvolutionarySearch {
        seed: 7,
        mu: 4,
        lambda: 4,
        ..Default::default()
    };
    es.warm_start(&[suggested]);
    let mut frontier = ParetoFrontier::new();
    let report = es.run(&DesignSpace::paper().full(), &evaluator, &mut frontier, 16);
    let best = report.best.expect("non-empty search");
    let seed_edp = evaluator.eval(&suggested).objectives.edp();
    assert!(
        best.objectives.edp() <= seed_edp,
        "elitist ES retains (or beats) its warm-start seed"
    );
    println!(
        "warm-started ES best: EDP {:.3e} (seed genome priced at {:.3e})",
        best.objectives.edp(),
        seed_edp,
    );
}
