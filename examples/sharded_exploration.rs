//! Sharded design-space exploration: the distributed shard → checkpoint →
//! merge workflow, end to end in one process.
//!
//! Each of four "workers" explores a disjoint slice of the space
//! (`DesignSpace::shard` splits the grid enumeration and the stochastic
//! strategies' RNG streams), checkpoints its Pareto frontier + evaluation
//! cache to a snapshot file through the dependency-free binary codec, and
//! a "coordinator" reads the snapshots back and union-merges them. The
//! merged frontier is then checked against a single-process run of the
//! same grid — they must describe the same trade-off surface
//! (`ParetoFrontier::dominance_equal`).
//!
//! Run with: `cargo run --release --example sharded_exploration`

use lego::explorer::{
    default_strategies, explore, explore_shard, DesignSpace, ExploreOptions, GridSearch,
    SearchStrategy, Snapshot,
};

fn main() {
    let model = lego::workloads::zoo::mobilenet_v2();
    let space = DesignSpace::paper();
    let shards = 4u32;
    let seed = 0xDE5E;
    let dir = std::env::temp_dir().join("lego_sharded_exploration");
    std::fs::create_dir_all(&dir).expect("temp snapshot dir");

    println!(
        "sharding {} genomes across {shards} workers for {} (seed {seed:#x})\n",
        space.size(),
        model.name
    );

    // --- Worker side: explore one shard each, checkpoint to disk. -------
    let mut paths = Vec::new();
    for i in 0..shards {
        let shard = space.shard(i, shards);
        let run = explore_shard(
            &model,
            &shard,
            &mut default_strategies(seed),
            &ExploreOptions {
                budget_per_strategy: shard.size(),
                ..Default::default()
            },
        );
        let path = dir.join(format!("shard_{i}_of_{shards}.bin"));
        run.snapshot(&model.name, seed)
            .write_to(&path)
            .expect("snapshot writes");
        println!(
            "worker {i}: {:>4} genomes, frontier {:>2} points, cache {:>5} entries -> {}",
            shard.size(),
            run.frontier.len(),
            run.cache.len(),
            path.display()
        );
        paths.push(path);
    }

    // --- Coordinator side: read the checkpoints back and merge. ---------
    let mut merged = Snapshot::read_from(&paths[0]).expect("snapshot reads");
    for path in &paths[1..] {
        let next = Snapshot::read_from(path).expect("snapshot reads");
        let (joined, absorbed) = merged.absorb(&next);
        println!(
            "merge {}: +{joined} frontier points, +{absorbed} cache entries",
            path.file_name().unwrap().to_string_lossy()
        );
    }
    println!(
        "\nmerged: frontier {} points, cache {} unique evaluations",
        merged.frontier.len(),
        merged.cache.len()
    );
    let best = merged.frontier.best_by_edp().expect("non-empty frontier");
    println!(
        "merged-best EDP {:.3e} ({})",
        best.objectives.edp(),
        best.genome
    );

    // --- The invariant that makes sharding trustworthy. -----------------
    // A disjoint grid partition, merged, must find exactly the trade-off
    // surface a single process finds.
    // (The budget must cover the whole space: grid search truncates at
    // `budget_per_strategy`, and a truncated single-process grid would
    // see fewer genomes than the union of full shards.)
    let exhaustive = ExploreOptions {
        budget_per_strategy: space.size(),
        ..Default::default()
    };
    let single = explore(
        &model,
        &space,
        &mut [Box::new(GridSearch) as Box<dyn SearchStrategy>],
        &exhaustive,
    );
    let mut grid_union = lego::explorer::ParetoFrontier::new();
    for i in 0..shards {
        let run = explore_shard(
            &model,
            &space.shard(i, shards),
            &mut [Box::new(GridSearch) as Box<dyn SearchStrategy>],
            &exhaustive,
        );
        grid_union.merge(&run.frontier);
    }
    assert!(
        grid_union.dominance_equal(&single.frontier),
        "union of shard frontiers must match the single-process frontier"
    );
    println!(
        "\nverified: union of {shards} grid-shard frontiers is dominance-equal \
         to the single-process frontier ({} points)",
        single.frontier.len()
    );
}
