//! Design-space exploration: search hardware configurations — including
//! the L2 cluster axis — for a model under a hard area/power budget, print
//! the feasible Pareto frontier over (latency, energy, area), and compare
//! the best EDP design against the paper's hand-picked 256-FU baseline.
//!
//! Multi-cluster candidates are priced through the unified cost stack in
//! `lego::model` (`CostContext`), so they pay modeled wormhole-mesh
//! latency and router area — the cluster column below is a real trade-off,
//! not free parallelism.
//!
//! Run with: `cargo run --release --example explore_design_space`

use lego::explorer::{
    default_strategies, explore, Constraints, DesignSpace, Evaluator, ExploreOptions, Genome,
};
use lego::model::TechModel;

fn main() {
    let model = lego::workloads::zoo::mobilenet_v2();
    let space = DesignSpace::paper();
    // Hard feasibility budget: designs over 10 mm² or 3 W are evaluated
    // but can never reach the frontier or be reported as best.
    let constraints = Constraints::none()
        .with_max_area_mm2(10.0)
        .with_max_power_mw(3000.0);
    let opts = ExploreOptions {
        budget_per_strategy: space.size(),
        constraints,
        ..Default::default()
    };

    println!(
        "exploring {} configurations for {} (grid + random + evolutionary)",
        space.size(),
        model.name
    );
    println!(
        "hard budget: 10 mm2 / 3 W; cluster axis: {:?}\n",
        space.clusters
    );
    let result = explore(&model, &space, &mut default_strategies(42), &opts);

    println!(
        "feasible Pareto frontier ({} points):",
        result.frontier.len()
    );
    println!(
        "{:>34} {:>12} {:>12} {:>10} {:>9}",
        "config", "cycles", "energy (µJ)", "area (mm²)", "peak (W)"
    );
    let mut points: Vec<_> = result.frontier.points().to_vec();
    points.sort_by(|a, b| {
        a.objectives
            .latency_cycles
            .partial_cmp(&b.objectives.latency_cycles)
            .expect("finite latency")
    });
    for p in &points {
        println!(
            "{:>34} {:>12.0} {:>12.2} {:>10.2} {:>9.2}",
            p.genome.to_string(),
            p.objectives.latency_cycles,
            p.objectives.energy_pj / 1e6,
            p.objectives.area_um2 / 1e6,
            p.peak_power_mw / 1e3,
        );
    }
    let clustered = points
        .iter()
        .filter(|p| p.genome.clusters != (1, 1))
        .count();
    println!("multi-cluster designs on the frontier: {clustered}");

    for report in &result.reports {
        let best = report.best.as_ref().expect("strategy evaluated something");
        println!(
            "\n{:>28}: {} evals, best EDP {:.3e} ({})",
            report.strategy,
            report.evaluated,
            best.objectives.edp(),
            best.genome
        );
    }

    let baseline = Evaluator::new(&model, TechModel::default()).eval(&Genome::lego_256_baseline());
    let best = result.best_by_edp().expect("non-empty frontier");
    println!(
        "\nhand-picked lego_256 EDP {:.3e}; explored best {:.3e} ({}) — {:.2}x",
        baseline.objectives.edp(),
        best.objectives.edp(),
        best.genome,
        baseline.objectives.edp() / best.objectives.edp(),
    );
    println!(
        "cache: {} hits / {} misses across strategies",
        result.cache_hits, result.cache_misses
    );
}
