//! Design-space exploration: search hardware configurations for a model,
//! print the Pareto frontier over (latency, energy, area), and compare the
//! best EDP design against the paper's hand-picked 256-FU baseline.
//!
//! Run with: `cargo run --release --example explore_design_space`

use lego::explorer::{default_strategies, explore, DesignSpace, Evaluator, ExploreOptions, Genome};
use lego::model::TechModel;

fn main() {
    let model = lego::workloads::zoo::mobilenet_v2();
    let space = DesignSpace::paper();
    let opts = ExploreOptions {
        budget_per_strategy: space.size(),
        ..Default::default()
    };

    println!(
        "exploring {} configurations for {} (grid + random + evolutionary)\n",
        space.size(),
        model.name
    );
    let result = explore(&model, &space, &mut default_strategies(42), &opts);

    println!("Pareto frontier ({} points):", result.frontier.len());
    println!(
        "{:>28} {:>12} {:>12} {:>10}",
        "config", "cycles", "energy (µJ)", "area (mm²)"
    );
    let mut points: Vec<_> = result.frontier.points().to_vec();
    points.sort_by(|a, b| {
        a.objectives
            .latency_cycles
            .partial_cmp(&b.objectives.latency_cycles)
            .expect("finite latency")
    });
    for p in &points {
        println!(
            "{:>28} {:>12.0} {:>12.2} {:>10.2}",
            p.genome.to_string(),
            p.objectives.latency_cycles,
            p.objectives.energy_pj / 1e6,
            p.objectives.area_um2 / 1e6,
        );
    }

    for report in &result.reports {
        let best = report.best.as_ref().expect("strategy evaluated something");
        println!(
            "\n{:>28}: {} evals, best EDP {:.3e} ({})",
            report.strategy,
            report.evaluated,
            best.objectives.edp(),
            best.genome
        );
    }

    let baseline = Evaluator::new(&model, TechModel::default()).eval(&Genome::lego_256_baseline());
    let best = result.best_by_edp().expect("non-empty frontier");
    println!(
        "\nhand-picked lego_256 EDP {:.3e}; explored best {:.3e} ({}) — {:.2}x",
        baseline.objectives.edp(),
        best.objectives.edp(),
        best.genome,
        baseline.objectives.edp() / best.objectives.edp(),
    );
    println!(
        "cache: {} hits / {} misses across strategies",
        result.cache_hits, result.cache_misses
    );
}
