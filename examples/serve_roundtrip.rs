//! Serving round trip: a warm evaluation server, framed clients, and
//! the unified status discipline.
//!
//! Starts an in-process `lego::serve::Server` on both a TCP port and a
//! Unix socket, then walks the wire contract:
//!
//! 1. a request priced over TCP comes back **byte-identical** to an
//!    offline `EvalSession::new()` evaluation — the server's warm cache
//!    never leaks into replies;
//! 2. the same request over the Unix socket matches too;
//! 3. pipelined requests return in submission order;
//! 4. an *invalid* request (hardware with no dataflows) earns a typed
//!    status reply — the connection survives and keeps serving;
//! 5. backpressure is visible: against a tiny queue with no workers,
//!    the wire says `QUEUE_FULL` instead of hanging.
//!
//! Run with: `cargo run --example serve_roundtrip`

use lego::eval::{EvalError, EvalRequest, EvalSession, StatusCode};
use lego::serve::{Client, Server, ServerConfig};
use lego::sim::HwConfig;

fn main() {
    // ── A server with a byte-budgeted cache, on two transports ─────────
    let server = Server::new(ServerConfig {
        cache_budget: Some(lego::eval::estimated_resident_bytes_for(256)),
        ..Default::default()
    });
    let addr = server.listen_tcp("127.0.0.1:0").expect("bind tcp");
    let sock = std::env::temp_dir().join(format!("serve-roundtrip-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    server.listen_unix(&sock).expect("bind unix");
    println!("serving on tcp {addr} and unix {}", sock.display());

    let request = EvalRequest::builder(lego::workloads::zoo::mobilenet_v2(), HwConfig::lego_256())
        .build()
        .expect("zoo model on stock hardware is a valid request");
    let offline = EvalSession::new().evaluate(&request);

    // ── 1+2. Byte identity on both transports ──────────────────────────
    let mut tcp = Client::connect_tcp(addr).expect("connect tcp");
    let mut unix = Client::connect_unix(&sock).expect("connect unix");
    let via_tcp = tcp.evaluate_bytes(&request).expect("tcp round trip");
    let via_unix = unix.evaluate_bytes(&request).expect("unix round trip");
    assert_eq!(via_tcp, offline.encode());
    assert_eq!(via_unix, offline.encode());
    println!(
        "reply bytes match offline evaluation on both transports ({} bytes, {} layers)",
        via_tcp.len(),
        offline.per_layer.len(),
    );

    // ── 3. Pipelining: replies in submission order ─────────────────────
    let capped = EvalRequest::builder(lego::workloads::zoo::lenet(), HwConfig::lego_256())
        .tile_cap(32)
        .build()
        .unwrap();
    tcp.send(&request).unwrap();
    tcp.send(&capped).unwrap();
    let first = tcp.recv_report_bytes().unwrap();
    let second = tcp.recv_report_bytes().unwrap();
    assert_eq!(first, offline.encode());
    assert_eq!(second, EvalSession::new().evaluate(&capped).encode());
    println!("pipelined replies arrive in submission order");

    // ── 4. Failures are replies, not dropped connections ───────────────
    let mut no_dataflows = HwConfig::lego_256();
    no_dataflows.dataflows.clear();
    match tcp.evaluate_bytes(&EvalRequest::new(
        lego::workloads::zoo::lenet(),
        no_dataflows,
    )) {
        Err(EvalError::Remote { code, message }) => {
            assert_eq!(code, StatusCode::INVALID_HW);
            println!("invalid request refused with status {code}: {message}");
        }
        other => panic!("expected a remote status, got {other:?}"),
    }
    // The same connection still serves.
    assert_eq!(tcp.evaluate_bytes(&request).unwrap(), offline.encode());
    println!("connection survived the refusal and keeps serving");
    server.shutdown();

    // ── 5. Backpressure on the wire ────────────────────────────────────
    // A deliberately starved server: zero workers, two queue slots.
    let starved = Server::new(ServerConfig {
        workers: 0,
        queue_capacity: 2,
        ..Default::default()
    });
    let addr = starved.listen_tcp("127.0.0.1:0").unwrap();
    let mut c = Client::connect_tcp(addr).unwrap();
    for _ in 0..3 {
        c.send(&capped).unwrap();
    }
    // The first two are admitted (still pending), the third is refused;
    // draining the starved server flushes the pending slots as statuses.
    let drain = std::thread::spawn(move || {
        let mut statuses = Vec::new();
        for _ in 0..3 {
            statuses.push(c.recv_raw().unwrap().0);
        }
        statuses
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    starved.shutdown();
    let statuses = drain.join().unwrap();
    assert_eq!(statuses[2], StatusCode::QUEUE_FULL);
    println!(
        "starved server answered [{}] — backpressure is a status, not a hang",
        statuses
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
}
