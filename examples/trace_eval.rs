//! Tracing & profiling: capture where an evaluation spends its time.
//!
//! Attach a wall-clock `Obs` handle with a bounded trace ring to an
//! `EvalSession`, evaluate a model, then export the run two ways:
//!
//! * **Chrome trace-event JSON** — load `trace_eval.json` in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing` to see the
//!   `eval/*` span tree on a timeline, with each span tagged by the
//!   `RequestId` the session minted for the evaluation;
//! * **folded stacks** — feed `trace_eval.folded` to any flamegraph
//!   tool (`flamegraph.pl`, inferno, speedscope).
//!
//! The summary printed at the end carries log-bucketed p50/p90/p99
//! latency percentiles per span and the cache residency gauges. Swap
//! `Obs::wall_clock()` for `Obs::deterministic()` and the same code
//! produces byte-identical exports on every run (all timestamps zeroed)
//! — that is what CI diffs.
//!
//! Run with: `cargo run --example trace_eval`

use lego::eval::{EvalRequest, EvalSession};
use lego::obs::Obs;
use lego::sim::HwConfig;

fn main() {
    // A wall-clock recorder with a 64Ki-event trace ring. The ring is
    // bounded: if a run overflows it, the oldest events are dropped and
    // the exporters still emit a well-formed trace.
    let obs = Obs::wall_clock().traced(65536);
    let session = EvalSession::new().with_obs(obs.clone());

    // Evaluate twice: the first request runs cold, the second hits the
    // session cache — both visible in the trace as separate request ids.
    let request = EvalRequest::builder(lego::workloads::zoo::mobilenet_v2(), HwConfig::lego_256())
        .build()
        .expect("zoo model on stock hardware is a valid request");
    let cold = session.evaluate(&request);
    let warm = session.evaluate(&request);
    // Same prices either way — only provenance records the cache warmth.
    assert_eq!(cold.cost, warm.cost);
    assert_eq!(cold.per_layer, warm.per_layer);
    println!(
        "request {} ran cold ({} misses); request {} ran warm ({} hits)",
        cold.provenance.request_id,
        cold.provenance.cache_misses,
        warm.provenance.request_id,
        warm.provenance.cache_hits,
    );

    // Export the ring. Spans become B/E duration events, counters become
    // C events; `args.request_id` ties every span to its evaluation.
    let snapshot = obs.trace_snapshot().expect("tracing is enabled");
    let out_dir = std::env::temp_dir();
    let trace_path = out_dir.join("trace_eval.json");
    let folded_path = out_dir.join("trace_eval.folded");
    std::fs::write(&trace_path, snapshot.chrome_trace_json()).expect("write trace");
    std::fs::write(&folded_path, snapshot.folded_stacks()).expect("write stacks");
    println!(
        "{} trace events ({} dropped) -> {}",
        snapshot.events.len(),
        snapshot.dropped,
        trace_path.display(),
    );
    println!("folded stacks -> {}", folded_path.display());

    // The cache gauges price what the session is holding resident.
    let gauges = session.cache().gauges();
    println!(
        "cache: {} entries resident (~{} bytes), hit rate {:.0}%",
        gauges.entries,
        gauges.resident_bytes,
        gauges.hit_rate() * 100.0,
    );

    // And the summary aggregates every span into p50/p90/p99 histograms.
    println!("\n{}", obs.summary().render());
}
