//! Quickstart: generate the paper's Figure 3 design — a 2×2 systolic GEMM
//! array (TPU-style, K-J parallel) — inspect it, verify it functionally,
//! and emit Verilog.
//!
//! Run with: `cargo run --example quickstart`

use lego::core::Lego;
use lego::ir::kernels::{self, dataflows};
use lego::ir::{tensor::reference_execute, TensorData};
use lego::model::TechModel;

fn main() {
    // 1. Describe the workload relation-centrically: GEMM Y += X·W.
    let gemm = kernels::gemm(8, 4, 4);
    println!("Workload:\n{}", gemm.to_loop_nest());

    // 2. Pick a spatial dataflow: parallel k and j on a 2×2 array with a
    //    systolic control flow (c = [1, 1]).
    let df = dataflows::gemm_kj(&gemm, 2);
    println!(
        "Dataflow `{}`: {} FUs, {} temporal steps, control {:?}",
        df.name,
        df.num_fus(),
        df.total_steps(),
        df.control
    );

    // 3. Generate the accelerator.
    let design = Lego::new(gemm.clone()).dataflow(df).generate().unwrap();
    println!("\n{}", design.adg.summary());
    println!("{}", design.dag.summary());

    // 4. Verify cycle-accurately against the reference loop nest.
    let x = TensorData::from_fn(&[8, 4], |i| (i as i64 * 7 + 1) % 13 - 6);
    let w = TensorData::from_fn(&[4, 4], |i| (i as i64 * 5 + 2) % 11 - 5);
    let out = design.simulate(0, &[&x, &w]);
    assert_eq!(out.output, reference_execute(&gemm, &[&x, &w]));
    println!(
        "\nVerified: output matches the reference ({} FU ops, {} edge deliveries, {} port reads)",
        out.stats.fu_ops, out.stats.edge_deliveries, out.stats.port_reads
    );

    // 5. Cost it and emit Verilog.
    let cost = design.cost(&TechModel::default());
    println!(
        "Cost @28nm: {:.0} um^2 logic, {:.2} mW, {:.0} FF bits",
        cost.area_um2,
        cost.total_mw(),
        cost.ff_bits
    );
    let verilog = design.verilog("gemm_systolic_2x2");
    println!(
        "Emitted {} lines of Verilog (module gemm_systolic_2x2)",
        verilog.lines().count()
    );
}
