//! Quickstart: the two halves of LEGO in one sitting.
//!
//! 1. **Evaluate** — price a whole network on a hardware configuration
//!    through the canonical request/response API (`EvalRequest` in,
//!    `EvalReport` out; the request is serializable, so the same bytes
//!    evaluate identically on any host).
//! 2. **Generate** — produce the paper's Figure 3 design (a 2×2 systolic
//!    GEMM array), verify it functionally, and emit Verilog.
//!
//! Along the way: attach a deterministic `Obs` handle to the session to
//! see where an evaluation spends its work without perturbing any result.
//!
//! Run with: `cargo run --example quickstart`

use lego::core::Lego;
use lego::eval::{EvalRequest, EvalSession};
use lego::ir::kernels::{self, dataflows};
use lego::ir::{tensor::reference_execute, TensorData};
use lego::model::TechModel;
use lego::obs::Obs;
use lego::sim::HwConfig;

fn main() {
    // ── 1. Evaluate a workload on a configuration ──────────────────────
    // One session owns the cost model, the memoized evaluation cache, and
    // the worker pool; requests describe *what* to price.
    let session = EvalSession::new();
    let request = EvalRequest::builder(lego::workloads::zoo::resnet50(), HwConfig::lego_256())
        .build()
        .expect("zoo model on stock hardware is a valid request");
    let report = session.evaluate(&request);
    println!(
        "ResNet50 on LEGO-256: {:.0} GOP/s at {:.0} GOPS/W, {:.2} mm^2, EDP {:.3e}",
        report.model.gops,
        report.model.gops_per_watt,
        report.cost.objectives.area_um2 / 1e6,
        report.cost.edp(),
    );
    println!(
        "per-layer dataflow choices: {:?}",
        report.dataflow_histogram()
    );

    // Requests and reports are versioned wire payloads: encode → decode →
    // re-evaluate reproduces the report bit-for-bit on any host. A fresh
    // session matches the sender's cold cache, which provenance records.
    let wire = request.encode();
    let decoded = EvalRequest::decode(&wire).expect("own encoding decodes");
    assert_eq!(EvalSession::new().evaluate(&decoded), report);
    println!(
        "request round-trips through {} bytes (fingerprint {:#018x})",
        wire.len(),
        request.fingerprint(),
    );

    // ── Observability ──────────────────────────────────────────────────
    // Attach an `Obs` handle to see where the evaluation spends its work.
    // `Obs::deterministic()` counts work but never reads the clock, so the
    // rendered summary is byte-identical across runs; instrumentation never
    // changes a report. (`Obs::wall_clock()` fills in real durations — the
    // `perf_bench` binary uses both to write `BENCH_eval.json`.)
    let obs = Obs::deterministic();
    let observed = EvalSession::new().with_obs(obs.clone()).evaluate(&request);
    assert_eq!(observed, report);
    let summary = obs.summary();
    println!(
        "observed: {} request(s), {} layer(s), {} cache misses, {} spans recorded",
        summary.counter("eval.requests"),
        summary.counter("eval.layers"),
        summary.counter("cache.misses"),
        summary.spans.len(),
    );

    // ── 2. Generate the paper's Figure 3 accelerator ───────────────────
    // Describe the workload relation-centrically: GEMM Y += X·W, then pick
    // a spatial dataflow (parallel k and j on a 2×2 systolic array).
    let gemm = kernels::gemm(8, 4, 4);
    let df = dataflows::gemm_kj(&gemm, 2);
    println!(
        "\nDataflow `{}`: {} FUs, {} temporal steps, control {:?}",
        df.name,
        df.num_fus(),
        df.total_steps(),
        df.control
    );
    let design = Lego::new(gemm.clone()).dataflow(df).generate().unwrap();
    println!("{}", design.adg.summary());
    println!("{}", design.dag.summary());

    // Verify cycle-accurately against the reference loop nest.
    let x = TensorData::from_fn(&[8, 4], |i| (i as i64 * 7 + 1) % 13 - 6);
    let w = TensorData::from_fn(&[4, 4], |i| (i as i64 * 5 + 2) % 11 - 5);
    let out = design.simulate(0, &[&x, &w]);
    assert_eq!(out.output, reference_execute(&gemm, &[&x, &w]));
    println!(
        "Verified: output matches the reference ({} FU ops, {} edge deliveries, {} port reads)",
        out.stats.fu_ops, out.stats.edge_deliveries, out.stats.port_reads
    );

    // Cost it and emit Verilog.
    let cost = design.cost(&TechModel::default());
    println!(
        "Cost @28nm: {:.0} um^2 logic, {:.2} mW, {:.0} FF bits",
        cost.area_um2,
        cost.total_mw(),
        cost.ff_bits
    );
    let verilog = design.verilog("gemm_systolic_2x2");
    println!(
        "Emitted {} lines of Verilog (module gemm_systolic_2x2)",
        verilog.lines().count()
    );
}
