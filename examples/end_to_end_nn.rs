//! End-to-end neural-network evaluation (paper Figure 11): price every
//! layer of MobileNetV2 on the Gemmini-comparable LEGO configuration
//! through the canonical `EvalSession` request/response API, watch the
//! mapper switch dataflows per layer, and compare against the Gemmini
//! baseline.
//!
//! Run with: `cargo run --release --example end_to_end_nn`

use lego::baselines::simulate_model_gemmini;
use lego::eval::{EvalRequest, EvalSession};
use lego::model::TechModel;
use lego::sim::HwConfig;
use lego::workloads::zoo;

fn main() {
    let tech = TechModel::default();
    let hw = HwConfig::lego_256();
    let model = zoo::mobilenet_v2();

    let session = EvalSession::new();
    let request = EvalRequest::builder(model.clone(), hw.clone())
        .build()
        .expect("zoo model on stock hardware is a valid request");
    let report = session.evaluate(&request);
    println!(
        "MobileNetV2 on LEGO-256: {:.0} GOP/s at {:.0} GOPS/W ({:.1}% utilization)",
        report.model.gops,
        report.model.gops_per_watt,
        100.0 * report.model.utilization
    );
    println!(
        "per-layer dataflow choices: {:?}",
        report.dataflow_histogram()
    );

    // Show a few interesting layers: depthwise picks OHOW, pointwise ICOC.
    for l in report.per_layer.iter().filter(|l| l.name.contains("b3.0")) {
        println!(
            "  {:<18} -> {:<5} {:>9} cycles, util {:.2}",
            l.name,
            l.perf.mapping.name(),
            l.perf.cycles,
            l.perf.utilization
        );
    }

    let gemmini = simulate_model_gemmini(&model, &tech);
    println!(
        "Gemmini baseline: {:.0} GOP/s at {:.0} GOPS/W",
        gemmini.gops, gemmini.gops_per_watt
    );
    println!(
        "LEGO speedup: {:.1}x, energy-efficiency gain: {:.1}x (paper MobileNetV2: ~12.9x / ~9.6x)",
        report.model.gops / gemmini.gops,
        report.model.gops_per_watt / gemmini.gops_per_watt
    );
}
